(* routesim: run a rerouting policy on a built-in topology in the
   bulletin-board model and report convergence measurements. *)

open Cmdliner
open Staleroute_wardrop
open Staleroute_dynamics
open Staleroute_experiments
module Table = Staleroute_util.Table

type policy_spec =
  | Smooth of (Instance.t -> Policy.t)
  | Best_response_exact

let parse_policy spec =
  match Topologies.split_spec (String.lowercase_ascii spec) with
  | "uniform-linear", None -> Ok (Smooth Policy.uniform_linear)
  | "replicator", None -> Ok (Smooth Policy.replicator)
  | "logit", arg -> (
      match Option.bind arg float_of_string_opt with
      | Some c when c > 0. ->
          Ok (Smooth (fun inst -> Policy.best_response_approx inst ~c))
      | _ -> Error "logit requires a positive parameter, e.g. logit:5")
  | "better-response", None ->
      Ok (Smooth (fun _ -> Policy.better_response ~sampling:Sampling.Uniform))
  | "frv", None -> Ok (Smooth (fun _ -> Policy.frv ()))
  | "best-response", None -> Ok Best_response_exact
  | name, _ -> Error (Printf.sprintf "unknown policy %S" name)

let policy_doc =
  "Policy: uniform-linear, replicator, logit:C, better-response, frv, \
   best-response."

let parse_init inst = function
  | "uniform" -> Ok (Flow.uniform inst)
  | "worst" -> Ok (Common.worst_start inst)
  | "biased" -> Ok (Common.biased_start inst)
  | s -> Error (Printf.sprintf "unknown initial flow %S" s)

let run_smooth inst policy_of ~period ~phases ~steps ~init ~delta ~eps ~trace =
  let policy = policy_of inst in
  let staleness, t_label =
    match period with
    | `Fresh -> (Driver.Fresh, "fresh")
    | `Auto -> (
        match Policy.safe_update_period inst policy with
        | Some t_star ->
            let t = Float.min t_star 1. in
            (Driver.Stale t, Printf.sprintf "%.6g (auto = min(T*,1))" t)
        | None ->
            (* Not alpha-smooth (e.g. frv): fall back to the
               elasticity-based period. *)
            let t = Float.min (Policy.elastic_update_period inst) 1. in
            (Driver.Stale t, Printf.sprintf "%.6g (auto = min(T_e,1))" t))
    | `Fixed t -> (Driver.Stale t, Printf.sprintf "%.6g" t)
  in
  let result =
    Common.run inst policy staleness ~phases ~steps_per_phase:steps ~init ()
  in
  let snapshots = Common.phase_start_flows result in
  let eq = Frank_wolfe.equilibrium inst in
  Printf.printf "policy           : %s\n" (Policy.name policy);
  Printf.printf "update period    : %s\n" t_label;
  (match Policy.safe_update_period inst policy with
  | Some t_star -> Printf.printf "safe period T*   : %.6g\n" t_star
  | None -> Printf.printf "safe period T*   : none (policy not smooth)\n");
  Printf.printf "phases           : %d\n" phases;
  Printf.printf "potential  start : %.6g\n"
    result.Driver.records.(0).Driver.start_potential;
  Printf.printf "potential  final : %.6g\n" result.Driver.final_potential;
  Printf.printf "potential  PHI*  : %.6g\n" eq.Frank_wolfe.objective;
  Printf.printf "wardrop gap      : %.6g\n"
    (Equilibrium.wardrop_gap inst result.Driver.final_flow);
  Printf.printf "bad rounds       : %d (delta=%g, eps=%g)\n"
    (Convergence.bad_rounds inst Convergence.Strict ~delta ~eps snapshots)
    delta eps;
  Printf.printf "oscillating      : %b\n"
    (Convergence.is_oscillating snapshots);
  if trace then begin
    print_endline "phase,time,potential,virtual_gain,delta_phi";
    Array.iter
      (fun r ->
        Printf.printf "%d,%.6g,%.8g,%.8g,%.8g\n" r.Driver.index
          r.Driver.start_time r.Driver.start_potential r.Driver.virtual_gain
          r.Driver.delta_phi)
      result.Driver.records
  end

let run_best_response inst ~period ~phases ~delta ~eps ~trace =
  let t =
    match period with
    | `Fixed t -> t
    | `Auto -> 1.
    | `Fresh ->
        prerr_endline "best-response requires a positive update period";
        exit 2
  in
  let init = Common.biased_start inst in
  let run = Best_response.run inst ~update_period:t ~phases ~init in
  let last = run.Best_response.phase_starts.(phases) in
  Printf.printf "policy           : best-response (exact per-phase orbit)\n";
  Printf.printf "update period    : %.6g\n" t;
  Printf.printf "phases           : %d\n" phases;
  Printf.printf "potential  start : %.6g\n" run.Best_response.potentials.(0);
  Printf.printf "potential  final : %.6g\n"
    run.Best_response.potentials.(phases);
  Printf.printf "wardrop gap      : %.6g\n" (Equilibrium.wardrop_gap inst last);
  Printf.printf "bad rounds       : %d (delta=%g, eps=%g)\n"
    (Convergence.bad_rounds inst Convergence.Strict ~delta ~eps
       run.Best_response.phase_starts)
    delta eps;
  Printf.printf "oscillating      : %b\n"
    (Convergence.is_oscillating run.Best_response.phase_starts);
  if trace then begin
    print_endline "phase,time,potential";
    Array.iteri
      (fun k phi -> Printf.printf "%d,%.6g,%.8g\n" k (float_of_int k *. t) phi)
      run.Best_response.potentials
  end

let main topology policy period phases steps init delta eps trace =
  match Topologies.parse topology with
  | Error e ->
      prerr_endline e;
      exit 2
  | Ok inst -> (
      Format.printf "instance         : %a@." Instance.pp inst;
      match parse_policy policy with
      | Error e ->
          prerr_endline e;
          exit 2
      | Ok (Smooth policy_of) -> (
          match parse_init inst init with
          | Error e ->
              prerr_endline e;
              exit 2
          | Ok init ->
              run_smooth inst policy_of ~period ~phases ~steps ~init ~delta
                ~eps ~trace)
      | Ok Best_response_exact ->
          run_best_response inst ~period ~phases ~delta ~eps ~trace)

let period_conv =
  let parse = function
    | "auto" -> Ok `Auto
    | "fresh" -> Ok `Fresh
    | s -> (
        match float_of_string_opt s with
        | Some t when t > 0. -> Ok (`Fixed t)
        | _ -> Error (`Msg (Printf.sprintf "bad period %S" s)))
  in
  let print ppf = function
    | `Auto -> Format.fprintf ppf "auto"
    | `Fresh -> Format.fprintf ppf "fresh"
    | `Fixed t -> Format.fprintf ppf "%g" t
  in
  Arg.conv (parse, print)

let cmd =
  let topology =
    Arg.(
      value
      & opt string "braess"
      & info [ "t"; "topology" ] ~docv:"SPEC" ~doc:Topologies.doc)
  in
  let policy =
    Arg.(
      value
      & opt string "replicator"
      & info [ "p"; "policy" ] ~docv:"POLICY" ~doc:policy_doc)
  in
  let period =
    Arg.(
      value
      & opt period_conv `Auto
      & info [ "T"; "period" ] ~docv:"T"
          ~doc:
            "Bulletin-board update period: a float, 'auto' (= min(T*, 1)) \
             or 'fresh' (always current information).")
  in
  let phases =
    Arg.(value & opt int 200 & info [ "n"; "phases" ] ~docv:"N"
         ~doc:"Number of update periods to simulate.")
  in
  let steps =
    Arg.(value & opt int 20 & info [ "steps" ] ~docv:"K"
         ~doc:"Integrator steps per phase.")
  in
  let init =
    Arg.(value & opt string "biased" & info [ "init" ] ~docv:"INIT"
         ~doc:"Initial flow: uniform, worst or biased.")
  in
  let delta =
    Arg.(value & opt float 0.1 & info [ "delta" ] ~docv:"D"
         ~doc:"Latency slack of the approximate equilibrium report.")
  in
  let eps =
    Arg.(value & opt float 0.1 & info [ "eps" ] ~docv:"E"
         ~doc:"Volume slack of the approximate equilibrium report.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ]
         ~doc:"Print a per-phase CSV trace after the summary.")
  in
  let term =
    Term.(
      const main $ topology $ policy $ period $ phases $ steps $ init $ delta
      $ eps $ trace)
  in
  Cmd.v
    (Cmd.info "routesim" ~version:"1.0.0"
       ~doc:
         "Simulate adaptive rerouting with stale information in the Wardrop \
          model (Fischer & Vocking, PODC 2005)")
    term

let () = exit (Cmd.eval cmd)
