bin/wardrop_solve.mli:
