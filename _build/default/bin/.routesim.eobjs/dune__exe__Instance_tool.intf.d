bin/instance_tool.mli:
