bin/wardrop_solve.ml: Arg Array Cmd Cmdliner Equilibrium Flow Format Frank_wolfe Instance Printf Social Staleroute_graph Staleroute_util Staleroute_wardrop Term Topologies
