bin/routesim.mli:
