(* instance_tool: inspect, validate, solve and export routing-game
   instance files (and built-in topologies).

     instance_tool show  -t file:net.inst     structure + derived constants
     instance_tool solve -t braess            equilibrium + optimum + PoA
     instance_tool dot   -t grid:3x3          Graphviz DOT on stdout
     instance_tool dump  -t needle:8          instance file on stdout *)

open Cmdliner
open Staleroute_wardrop
open Staleroute_graph
module Table = Staleroute_util.Table

let with_instance topology k =
  match Topologies.parse topology with
  | Error e ->
      prerr_endline e;
      exit 2
  | Ok inst -> k inst

let show inst =
  let g = Instance.graph inst in
  Format.printf "%a@." Instance.pp inst;
  Printf.printf "acyclic          : %b\n" (Algo.is_acyclic g);
  Printf.printf "elastic period   : %g\n"
    (Staleroute_dynamics.Policy.elastic_update_period inst);
  (match
     Staleroute_dynamics.Policy.safe_update_period inst
       (Staleroute_dynamics.Policy.uniform_linear inst)
   with
  | Some t -> Printf.printf "T* (unif/linear) : %g\n" t
  | None -> ());
  let table =
    Table.create ~title:"Edges" ~columns:[ "id"; "from"; "to"; "latency" ]
  in
  Array.iter
    (fun e ->
      Table.add_row table
        [
          Table.cell_int e.Digraph.id;
          Table.cell_int e.Digraph.src;
          Table.cell_int e.Digraph.dst;
          Staleroute_latency.Latency.to_spec (Instance.latency inst e.Digraph.id);
        ])
    (Digraph.edges g);
  Table.print table;
  let commodities =
    Table.create ~title:"Commodities"
      ~columns:[ "#"; "src"; "dst"; "demand"; "paths" ]
  in
  for ci = 0 to Instance.commodity_count inst - 1 do
    let c = Instance.commodity inst ci in
    Table.add_row commodities
      [
        Table.cell_int ci;
        Table.cell_int c.Commodity.src;
        Table.cell_int c.Commodity.dst;
        Table.cell_float ~decimals:4 c.Commodity.demand;
        Table.cell_int (Array.length (Instance.paths_of_commodity inst ci));
      ]
  done;
  Table.print commodities

let solve inst =
  let eq = Frank_wolfe.equilibrium inst in
  let pg = Descent.equilibrium inst in
  Printf.printf "PHI* (frank-wolfe)      : %.8g (gap %.2g, %d iters)\n"
    eq.Frank_wolfe.objective eq.Frank_wolfe.gap eq.Frank_wolfe.iterations;
  Printf.printf "PHI* (proj. gradient)   : %.8g (%d iters)\n"
    pg.Descent.objective pg.Descent.iterations;
  Printf.printf "social cost (wardrop)   : %.8g\n"
    (Social.cost inst eq.Frank_wolfe.flow);
  let opt = Social.optimum inst in
  Printf.printf "social cost (optimum)   : %.8g\n" opt.Frank_wolfe.objective;
  Printf.printf "price of anarchy        : %.6g\n"
    (Social.price_of_anarchy inst)

let dot inst =
  print_string
    (Dot.to_dot
       ~edge_label:(fun e ->
         Staleroute_latency.Latency.to_string
           (Instance.latency inst e.Digraph.id))
       (Instance.graph inst))

let dump inst = print_string (Instance_format.to_string inst)

let main action topology =
  let run =
    match action with
    | "show" -> show
    | "solve" -> solve
    | "dot" -> dot
    | "dump" -> dump
    | other ->
        Printf.eprintf "unknown action %S (show|solve|dot|dump)\n" other;
        exit 2
  in
  with_instance topology run

let cmd =
  let action =
    Arg.(
      value
      & pos 0 string "show"
      & info [] ~docv:"ACTION" ~doc:"show, solve, dot or dump.")
  in
  let topology =
    Arg.(
      value
      & opt string "braess"
      & info [ "t"; "topology" ] ~docv:"SPEC" ~doc:Topologies.doc)
  in
  Cmd.v
    (Cmd.info "instance_tool" ~version:"1.0.0"
       ~doc:"Inspect, validate, solve and export routing-game instances")
    Term.(const main $ action $ topology)

let () = exit (Cmd.eval cmd)
