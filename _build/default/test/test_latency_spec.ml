open Helpers
module L = Staleroute_latency.Latency
module N = Staleroute_util.Numerics

let roundtrip name f =
  match L.of_spec (L.to_spec f) with
  | Error m -> Alcotest.failf "%s: roundtrip parse failed: %s" name m
  | Ok g ->
      (* Functional equality on a grid plus equal derived constants. *)
      Array.iter
        (fun x ->
          check_close
            (Printf.sprintf "%s: eval at %.3f" name x)
            (L.eval f x) (L.eval g x);
          check_close
            (Printf.sprintf "%s: integral at %.3f" name x)
            (L.integral f x) (L.integral g x))
        (N.linspace 0. 1. 17);
      check_close (name ^ ": slope bound") (L.slope_bound f) (L.slope_bound g)

let test_roundtrip_zoo () =
  List.iter
    (fun (name, f) -> roundtrip name f)
    [
      ("const", L.const 2.);
      ("affine", L.affine ~slope:3. ~intercept:0.5);
      ("linear", L.linear 2.);
      ("monomial", L.monomial ~coeff:2.5 ~degree:4);
      ("poly", L.poly [| 1.; 0.; 3.; 0.5 |]);
      ("relu", L.relu ~slope:4. ~knee:0.5);
      ("pwl", L.pwl [ (0., 0.); (0.25, 0.5); (0.6, 0.5); (1., 2.) ]);
      ("mm1", L.mm1 ~capacity:2.);
      ("scale", L.scale 2.5 (L.linear 1.));
      ("shift", L.shift 0.7 (L.monomial ~coeff:1. ~degree:2));
      ("sum", L.add (L.linear 1.) (L.mm1 ~capacity:3.));
      ( "nested",
        L.add
          (L.scale 0.5 (L.add (L.const 1.) (L.linear 2.)))
          (L.shift 0.1 (L.relu ~slope:3. ~knee:0.25)) );
    ]

let test_parse_examples () =
  List.iter
    (fun (spec, x, expected) ->
      match L.of_spec spec with
      | Error m -> Alcotest.failf "%s: %s" spec m
      | Ok f -> check_close spec expected (L.eval f x))
    [
      ("(const 1.5)", 0.3, 1.5);
      ("(affine 2 0.5)", 0.25, 1.0);
      ("(linear 3)", 0.5, 1.5);
      ("(monomial 2 3)", 0.5, 0.25);
      ("(poly 1 0 2)", 0.5, 1.5);
      ("(relu 4 0.5)", 0.75, 1.0);
      ("(mm1 2)", 1.0, 1.0);
      ("(scale 2 (linear 1))", 0.5, 1.0);
      ("(shift 1 (linear 1))", 0.5, 1.5);
      ("(sum (linear 1) (const 1))", 0.5, 1.5);
      ("(pwl 0 0  0.5 1  1 1)", 0.25, 0.5);
    ]

let test_whitespace_insensitive () =
  match L.of_spec "  ( sum\n\t(linear 1)   (const 2) ) " with
  | Ok f -> check_close "parsed with odd whitespace" 2.5 (L.eval f 0.5)
  | Error m -> Alcotest.fail m

let test_parse_errors () =
  List.iter
    (fun spec ->
      match L.of_spec spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected a parse error for %S" spec)
    [
      "";
      "(";
      ")";
      "(const)";
      "(const x)";
      "(unknown 1)";
      "(linear 1) trailing";
      "(sum (linear 1))";
      "(monomial 1 1.5)";
      "(pwl 0 0 1)";
      "(const -1)";        (* constructor validation surfaces as Error *)
      "(mm1 0.5)";
      "linear 1";
    ]

let arbitrary_latency seed =
  (* A small random generator over the algebra (depth <= 3). *)
  let r = Staleroute_util.Rng.create ~seed () in
  let pos () = 0.1 +. Staleroute_util.Rng.float r 3. in
  let rec build depth =
    let leaf () =
      match Staleroute_util.Rng.int r 5 with
      | 0 -> L.const (pos ())
      | 1 -> L.affine ~slope:(pos ()) ~intercept:(pos ())
      | 2 -> L.monomial ~coeff:(pos ()) ~degree:(1 + Staleroute_util.Rng.int r 5)
      | 3 -> L.mm1 ~capacity:(1.5 +. Staleroute_util.Rng.float r 2.)
      | _ -> L.relu ~slope:(pos ()) ~knee:(Staleroute_util.Rng.float r 1.)
    in
    if depth = 0 then leaf ()
    else
      match Staleroute_util.Rng.int r 4 with
      | 0 -> L.scale (pos ()) (build (depth - 1))
      | 1 -> L.shift (pos ()) (build (depth - 1))
      | 2 -> L.add (build (depth - 1)) (build (depth - 1))
      | _ -> leaf ()
  in
  build 3

let prop_roundtrip_random =
  qcheck ~count:100 "qcheck: spec roundtrip on random latency terms"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let f = arbitrary_latency seed in
      match L.of_spec (L.to_spec f) with
      | Error _ -> false
      | Ok g ->
          Array.for_all
            (fun x ->
              Staleroute_util.Numerics.approx_equal (L.eval f x) (L.eval g x))
            (N.linspace 0. 1. 9))

let suite =
  [
    case "roundtrip zoo" test_roundtrip_zoo;
    case "parse examples" test_parse_examples;
    case "whitespace insensitivity" test_whitespace_insensitive;
    case "parse errors" test_parse_errors;
    prop_roundtrip_random;
  ]
