open Helpers
open Staleroute_graph

let diamond_weights = [| 1.; 4.; 1.; 1.; 0.5 |]
(* Braess layout: 0:(0,1) 1:(0,2) 2:(1,3) 3:(2,3) 4:(1,2). *)

let test_distances () =
  let g = (Gen.braess ()).Gen.graph in
  let r = Dijkstra.run g ~weights:diamond_weights ~src:0 in
  check_close "distance to source" 0. (Dijkstra.distance r 0);
  check_close "distance to 1" 1. (Dijkstra.distance r 1);
  check_close "distance to 2 via bridge" 1.5 (Dijkstra.distance r 2);
  check_close "distance to sink" 2. (Dijkstra.distance r 3)

let test_path_extraction () =
  let g = (Gen.braess ()).Gen.graph in
  let r = Dijkstra.run g ~weights:diamond_weights ~src:0 in
  match Dijkstra.path_to r 3 with
  | None -> Alcotest.fail "sink should be reachable"
  | Some p ->
      check_true "shortest path uses direct top route"
        (Path.edge_ids p = [ 0; 2 ])

let test_path_to_source () =
  let g = (Gen.braess ()).Gen.graph in
  let r = Dijkstra.run g ~weights:diamond_weights ~src:0 in
  check_true "no path to the source itself" (Dijkstra.path_to r 0 = None)

let test_unreachable () =
  let g = Digraph.create ~nodes:3 ~edges:[ (0, 1) ] in
  let r = Dijkstra.run g ~weights:[| 1. |] ~src:0 in
  check_true "unreachable distance" (Dijkstra.distance r 2 = infinity);
  check_true "unreachable path" (Dijkstra.path_to r 2 = None)

let test_zero_weights () =
  let g = (Gen.parallel_links 3).Gen.graph in
  let r = Dijkstra.run g ~weights:[| 0.; 0.; 0. |] ~src:0 in
  check_close "zero-weight distance" 0. (Dijkstra.distance r 1)

let test_validation () =
  let g = (Gen.parallel_links 2).Gen.graph in
  check_raises_invalid "negative weight" (fun () ->
      Dijkstra.run g ~weights:[| 1.; -1. |] ~src:0);
  check_raises_invalid "weight length" (fun () ->
      Dijkstra.run g ~weights:[| 1. |] ~src:0);
  check_raises_invalid "bad source" (fun () ->
      Dijkstra.run g ~weights:[| 1.; 1. |] ~src:5)

let test_shortest_path_wrapper () =
  let g = (Gen.braess ()).Gen.graph in
  match Dijkstra.shortest_path g ~weights:diamond_weights ~src:0 ~dst:3 with
  | None -> Alcotest.fail "reachable"
  | Some (p, d) ->
      check_close "wrapper distance" 2. d;
      check_int "wrapper path length" 2 (Path.length p)

let test_multigraph_picks_cheapest_parallel () =
  let g = Digraph.create ~nodes:2 ~edges:[ (0, 1); (0, 1); (0, 1) ] in
  let r = Dijkstra.run g ~weights:[| 3.; 1.; 2. |] ~src:0 in
  check_close "cheapest parallel edge" 1. (Dijkstra.distance r 1);
  match Dijkstra.path_to r 1 with
  | Some p -> check_true "uses edge 1" (Path.edge_ids p = [ 1 ])
  | None -> Alcotest.fail "reachable"

(* Brute-force reference: minimum over all enumerated simple paths.
   With non-negative weights, some shortest walk is a simple path, so
   Dijkstra and the brute force agree. *)
let brute_force_distance g ~weights ~src ~dst =
  Path_enum.all_simple_paths g ~src ~dst
  |> List.fold_left
       (fun best p ->
         let len =
           List.fold_left (fun acc e -> acc +. weights.(e)) 0.
             (Path.edge_ids p)
         in
         Float.min best len)
       infinity

let prop_matches_brute_force =
  qcheck ~count:50 "qcheck: Dijkstra = brute force on random layered DAGs"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Staleroute_util.Rng.create ~seed () in
      let st = Gen.layered ~rng ~layers:3 ~width:3 ~edge_prob:0.5 in
      let g = st.Gen.graph in
      let weights =
        Array.init (Digraph.edge_count g) (fun _ ->
            Staleroute_util.Rng.float rng 10.)
      in
      let d = Dijkstra.run g ~weights ~src:st.Gen.src in
      let exact =
        brute_force_distance g ~weights ~src:st.Gen.src ~dst:st.Gen.dst
      in
      Float.abs (Dijkstra.distance d st.Gen.dst -. exact) < 1e-9)

let suite =
  [
    case "distances" test_distances;
    case "path extraction" test_path_extraction;
    case "path to source" test_path_to_source;
    case "unreachable" test_unreachable;
    case "zero weights" test_zero_weights;
    case "validation" test_validation;
    case "shortest_path wrapper" test_shortest_path_wrapper;
    case "parallel edges" test_multigraph_picks_cheapest_parallel;
    prop_matches_brute_force;
  ]
