open Helpers
module Rng = Staleroute_util.Rng
module Stats = Staleroute_util.Stats

let test_determinism () =
  let a = Rng.create ~seed:42 () and b = Rng.create ~seed:42 () in
  for _ = 1 to 100 do
    check_true "same seed, same stream" (Rng.bits32 a = Rng.bits32 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 () and b = Rng.create ~seed:2 () in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits32 a = Rng.bits32 b then incr same
  done;
  check_true "different seeds diverge" (!same < 4)

let test_stream_sensitivity () =
  let a = Rng.create ~seed:1 ~stream:1 ()
  and b = Rng.create ~seed:1 ~stream:2 () in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits32 a = Rng.bits32 b then incr same
  done;
  check_true "different streams diverge" (!same < 4)

let test_copy_independent () =
  let a = rng () in
  let b = Rng.copy a in
  let x = Rng.bits32 a in
  let y = Rng.bits32 b in
  check_true "copy resumes at the same point" (x = y);
  ignore (Rng.bits32 a);
  (* a advanced twice, b once; diverged state but same algorithm *)
  check_true "copies are independent"
    (Rng.bits32 a <> Rng.bits32 b || Rng.bits32 a <> Rng.bits32 b)

let test_split_independent () =
  let a = rng () in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits32 a = Rng.bits32 b then incr same
  done;
  check_true "split streams diverge" (!same < 4)

let test_int_bounds () =
  let r = rng () in
  for bound = 1 to 50 do
    for _ = 1 to 100 do
      let v = Rng.int r bound in
      check_true "int in [0, bound)" (v >= 0 && v < bound)
    done
  done

let test_int_rejects_bad_bounds () =
  let r = rng () in
  check_raises_invalid "zero bound" (fun () -> Rng.int r 0);
  check_raises_invalid "negative bound" (fun () -> Rng.int r (-3))

let test_int_covers_support () =
  let r = rng () in
  let seen = Array.make 10 false in
  for _ = 1 to 2000 do
    seen.(Rng.int r 10) <- true
  done;
  check_true "all residues reachable" (Array.for_all Fun.id seen)

let test_uniform_range () =
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Rng.uniform r in
    check_true "uniform in [0,1)" (v >= 0. && v < 1.)
  done

let test_uniform_mean () =
  let r = rng () in
  let xs = Array.init 20_000 (fun _ -> Rng.uniform r) in
  check_close ~eps:0.02 "uniform mean is 1/2" 0.5 (Stats.mean xs)

let test_float_range () =
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Rng.float r 7.5 in
    check_true "float in [0, bound)" (v >= 0. && v < 7.5)
  done

let test_exponential_mean () =
  let r = rng () in
  let xs = Array.init 20_000 (fun _ -> Rng.exponential r ~rate:2.) in
  check_close ~eps:0.02 "exp(2) mean is 1/2" 0.5 (Stats.mean xs);
  check_true "exponential is positive" (Array.for_all (fun x -> x >= 0.) xs)

let test_exponential_rejects_bad_rate () =
  let r = rng () in
  check_raises_invalid "zero rate" (fun () -> Rng.exponential r ~rate:0.);
  check_raises_invalid "negative rate" (fun () ->
      Rng.exponential r ~rate:(-1.))

let test_gaussian_moments () =
  let r = rng () in
  let xs = Array.init 40_000 (fun _ -> Rng.gaussian r) in
  check_close ~eps:0.03 "gaussian mean 0" 0. (Stats.mean xs);
  check_close ~eps:0.03 "gaussian std 1" 1. (Stats.std xs)

let test_bool_balance () =
  let r = rng () in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool r then incr trues
  done;
  check_true "bool is roughly fair"
    (!trues > 4500 && !trues < 5500)

let test_shuffle_permutes () =
  let r = rng () in
  let a = Array.init 100 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check_true "shuffle preserves elements" (sorted = Array.init 100 Fun.id);
  check_true "shuffle moved something" (a <> Array.init 100 Fun.id)

let test_shuffle_empty_and_singleton () =
  let r = rng () in
  let empty = [||] in
  Rng.shuffle r empty;
  check_true "empty shuffle ok" (empty = [||]);
  let one = [| 42 |] in
  Rng.shuffle r one;
  check_true "singleton shuffle ok" (one = [| 42 |])

let test_choose_weighted_support () =
  let r = rng () in
  for _ = 1 to 500 do
    let i = Rng.choose_weighted r [| 0.; 1.; 0.; 2. |] in
    check_true "only positive-weight indices" (i = 1 || i = 3)
  done

let test_choose_weighted_proportions () =
  let r = rng () in
  let counts = Array.make 3 0 in
  let w = [| 1.; 2.; 1. |] in
  for _ = 1 to 20_000 do
    let i = Rng.choose_weighted r w in
    counts.(i) <- counts.(i) + 1
  done;
  check_close ~eps:0.02 "middle weight gets half"
    0.5
    (float_of_int counts.(1) /. 20_000.)

let test_choose_weighted_rejects () =
  let r = rng () in
  check_raises_invalid "empty weights" (fun () -> Rng.choose_weighted r [||]);
  check_raises_invalid "negative weight" (fun () ->
      Rng.choose_weighted r [| 1.; -1. |]);
  check_raises_invalid "zero total" (fun () ->
      Rng.choose_weighted r [| 0.; 0. |])

let test_choose_weighted_single () =
  let r = rng () in
  check_int "single element" 0 (Rng.choose_weighted r [| 5. |])

let prop_int_in_bounds =
  qcheck "qcheck: Rng.int stays in bounds"
    QCheck2.Gen.(pair (int_range 1 1000) int)
    (fun (bound, seed) ->
      let r = Rng.create ~seed ()  in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let suite =
  [
    case "determinism" test_determinism;
    case "seed sensitivity" test_seed_sensitivity;
    case "stream sensitivity" test_stream_sensitivity;
    case "copy independence" test_copy_independent;
    case "split independence" test_split_independent;
    case "int bounds" test_int_bounds;
    case "int rejects bad bounds" test_int_rejects_bad_bounds;
    case "int covers support" test_int_covers_support;
    case "uniform range" test_uniform_range;
    case "uniform mean" test_uniform_mean;
    case "float range" test_float_range;
    case "exponential mean" test_exponential_mean;
    case "exponential rejects bad rate" test_exponential_rejects_bad_rate;
    case "gaussian moments" test_gaussian_moments;
    case "bool balance" test_bool_balance;
    case "shuffle permutes" test_shuffle_permutes;
    case "shuffle edge cases" test_shuffle_empty_and_singleton;
    case "choose_weighted support" test_choose_weighted_support;
    case "choose_weighted proportions" test_choose_weighted_proportions;
    case "choose_weighted rejects" test_choose_weighted_rejects;
    case "choose_weighted single" test_choose_weighted_single;
    prop_int_in_bounds;
  ]
