open Helpers
open Staleroute_graph

let test_contains_structure () =
  let st = Gen.braess () in
  let dot = Dot.to_dot ~name:"braess" st.Gen.graph in
  check_true "digraph header" (Str_contains.contains dot "digraph braess");
  check_true "a node" (Str_contains.contains dot "n0;");
  check_true "an edge" (Str_contains.contains dot "n0 -> n1");
  check_true "bridge edge" (Str_contains.contains dot "n1 -> n2");
  check_true "closing brace" (Str_contains.contains dot "}")

let test_custom_labels () =
  let st = Gen.parallel_links 2 in
  let dot =
    Dot.to_dot ~edge_label:(fun e -> Printf.sprintf "w%d" e.Digraph.id)
      st.Gen.graph
  in
  check_true "custom label" (Str_contains.contains dot "label=\"w1\"")

let suite =
  [
    case "structure" test_contains_structure;
    case "custom labels" test_custom_labels;
  ]
