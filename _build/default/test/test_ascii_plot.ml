open Helpers
module Plot = Staleroute_util.Ascii_plot

let test_empty () =
  check_true "empty plot placeholder"
    (Plot.render [] = "(empty plot)")

let test_contains_labels_and_glyphs () =
  let s =
    Plot.render ~title:"t"
      [
        { Plot.label = "alpha"; points = [ (0., 0.); (1., 1.) ] };
        { Plot.label = "beta"; points = [ (0., 1.); (1., 0.) ] };
      ]
  in
  check_true "title present" (Str_contains.contains s "t");
  check_true "first legend" (Str_contains.contains s "alpha");
  check_true "second legend" (Str_contains.contains s "beta");
  check_true "first glyph" (Str_contains.contains s "*");
  check_true "second glyph" (Str_contains.contains s "+")

let test_degenerate_axes () =
  (* Single point: spans are zero; must not crash or divide by zero. *)
  let s = Plot.render [ { Plot.label = "p"; points = [ (1., 1.) ] } ] in
  check_true "single point renders" (String.length s > 0)

let test_axis_bounds_shown () =
  let s =
    Plot.render [ { Plot.label = "s"; points = [ (0., -2.); (10., 7.) ] } ]
  in
  check_true "ymax shown" (Str_contains.contains s "7");
  check_true "ymin shown" (Str_contains.contains s "-2")

let test_custom_size () =
  let s =
    Plot.render ~width:10 ~height:4
      [ { Plot.label = "s"; points = [ (0., 0.); (1., 1.) ] } ]
  in
  (* 4 grid rows + 2 borders + x labels + legend: small but complete. *)
  check_true "renders at small size" (String.length s > 0)

let suite =
  [
    case "empty" test_empty;
    case "labels and glyphs" test_contains_labels_and_glyphs;
    case "degenerate axes" test_degenerate_axes;
    case "axis bounds" test_axis_bounds_shown;
    case "custom size" test_custom_size;
  ]
