test/test_path_enum.ml: Alcotest Digraph Gen Helpers List Path Path_enum QCheck2 Staleroute_graph Staleroute_util
