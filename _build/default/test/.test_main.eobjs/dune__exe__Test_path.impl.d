test/test_path.ml: Array Digraph Helpers Path Staleroute_graph
