test/test_ascii_plot.ml: Helpers Staleroute_util Str_contains String
