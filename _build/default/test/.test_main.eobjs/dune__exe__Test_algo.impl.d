test/test_algo.ml: Alcotest Algo Array Digraph Fun Gen Helpers List QCheck2 Staleroute_graph Staleroute_util
