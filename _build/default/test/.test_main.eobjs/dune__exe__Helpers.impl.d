test/helpers.ml: Alcotest QCheck2 QCheck_alcotest Staleroute_util
