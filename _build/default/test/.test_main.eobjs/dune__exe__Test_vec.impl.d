test/test_vec.ml: Array Float Helpers QCheck2 Staleroute_util
