test/test_stats.ml: Array Float Helpers QCheck2 Staleroute_util
