test/test_latency.ml: Array Float Helpers List Printf QCheck2 Staleroute_latency Staleroute_util String
