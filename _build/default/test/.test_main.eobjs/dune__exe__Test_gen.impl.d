test/test_gen.ml: Array Digraph Gen Helpers List Path Path_enum Staleroute_graph Staleroute_util
