test/test_digraph.ml: Array Digraph Helpers List Staleroute_graph
