test/test_latency_spec.ml: Alcotest Array Helpers List Printf QCheck2 Staleroute_latency Staleroute_util
