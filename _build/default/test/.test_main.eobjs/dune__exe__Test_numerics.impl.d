test/test_numerics.ml: Array Float Helpers QCheck2 Staleroute_util
