test/test_dijkstra.ml: Alcotest Array Digraph Dijkstra Float Gen Helpers List Path Path_enum QCheck2 Staleroute_graph Staleroute_util
