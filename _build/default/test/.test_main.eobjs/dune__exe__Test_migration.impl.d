test/test_migration.ml: Float Helpers List Migration QCheck2 Staleroute_dynamics
