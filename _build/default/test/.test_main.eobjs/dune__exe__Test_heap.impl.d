test/test_heap.ml: Alcotest Helpers List QCheck2 Staleroute_util
