test/test_simplex.ml: Array Float Helpers QCheck2 Staleroute_util
