test/test_dot.ml: Digraph Dot Gen Helpers Printf Staleroute_graph Str_contains
