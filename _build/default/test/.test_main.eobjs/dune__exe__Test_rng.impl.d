test/test_rng.ml: Array Fun Helpers QCheck2 Staleroute_util
