test/test_table.ml: Helpers List Printf Staleroute_util Str_contains
