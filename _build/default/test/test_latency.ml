open Helpers
module L = Staleroute_latency.Latency
module N = Staleroute_util.Numerics

let all_samples = N.linspace 0. 1. 41

(* Cross-check a closed-form integral against adaptive quadrature. *)
let check_integral_consistent ?(eps = 1e-7) name f =
  Array.iter
    (fun x ->
      check_close ~eps
        (Printf.sprintf "%s: integral at %.3f" name x)
        (N.integrate_adaptive (L.eval f) 0. x)
        (L.integral f x))
    all_samples

let check_nondecreasing name f =
  Array.iteri
    (fun i x ->
      if i > 0 then
        check_true
          (Printf.sprintf "%s nondecreasing at %.3f" name x)
          (L.eval f x >= L.eval f all_samples.(i - 1) -. 1e-12))
    all_samples

let check_slope_bound_valid name f =
  let bound = L.slope_bound f in
  Array.iteri
    (fun i x ->
      if i > 0 then begin
        let x0 = all_samples.(i - 1) in
        let secant = (L.eval f x -. L.eval f x0) /. (x -. x0) in
        check_true
          (Printf.sprintf "%s slope bound at %.3f" name x)
          (secant <= bound +. 1e-9)
      end)
    all_samples

let zoo () =
  [
    ("const", L.const 2.);
    ("affine", L.affine ~slope:3. ~intercept:0.5);
    ("linear", L.linear 2.);
    ("monomial", L.monomial ~coeff:2. ~degree:4);
    ("poly", L.poly [| 1.; 0.; 3.; 0.5 |]);
    ("relu", L.relu ~slope:4. ~knee:0.5);
    ("pwl", L.pwl [ (0., 0.); (0.25, 0.5); (0.6, 0.5); (1., 2.) ]);
    ("mm1", L.mm1 ~capacity:2.);
    ("scale", L.scale 2.5 (L.linear 1.));
    ("shift", L.shift 0.7 (L.monomial ~coeff:1. ~degree:2));
    ("sum", L.add (L.linear 1.) (L.mm1 ~capacity:3.));
  ]

let test_eval_known_values () =
  check_close "const" 2. (L.eval (L.const 2.) 0.7);
  check_close "affine" 2.3 (L.eval (L.affine ~slope:3. ~intercept:0.5) 0.6);
  check_close "monomial" 0.125 (L.eval (L.monomial ~coeff:1. ~degree:3) 0.5);
  check_close "poly horner" 1.75 (L.eval (L.poly [| 1.; 1.; 1. |]) 0.5);
  check_close "relu below knee" 0. (L.eval (L.relu ~slope:4. ~knee:0.5) 0.3);
  check_close "relu above knee" 1.2 (L.eval (L.relu ~slope:4. ~knee:0.5) 0.8);
  check_close "mm1" 2. (L.eval (L.mm1 ~capacity:1.5) 1.)

let test_eval_clamps () =
  let f = L.linear 2. in
  check_close "clamp below" 0. (L.eval f (-0.5));
  check_close "clamp above" 2. (L.eval f 1.5)

let test_pwl_interpolation () =
  let f = L.pwl [ (0., 0.); (0.5, 1.); (1., 1.) ] in
  check_close "at breakpoint" 1. (L.eval f 0.5);
  check_close "interpolated" 0.5 (L.eval f 0.25);
  check_close "flat region" 1. (L.eval f 0.75);
  check_close "right end" 1. (L.eval f 1.)

let test_integrals_closed_form () =
  check_close "const integral" 1.4 (L.integral (L.const 2.) 0.7);
  check_close "affine integral"
    ((3. /. 2. *. 0.36) +. (0.5 *. 0.6))
    (L.integral (L.affine ~slope:3. ~intercept:0.5) 0.6);
  check_close "relu integral: zero below knee" 0.
    (L.integral (L.relu ~slope:4. ~knee:0.5) 0.5);
  check_close "relu integral above knee" (4. *. 0.09 /. 2.)
    (L.integral (L.relu ~slope:4. ~knee:0.5) 0.8);
  check_close "mm1 integral" (log 2. -. log 1.)
    (L.integral (L.mm1 ~capacity:2.) 1.)

let test_integral_matches_quadrature () =
  List.iter (fun (name, f) -> check_integral_consistent name f) (zoo ())

let test_monotonicity () =
  List.iter (fun (name, f) -> check_nondecreasing name f) (zoo ())

let test_slope_bounds () =
  List.iter (fun (name, f) -> check_slope_bound_valid name f) (zoo ())

let test_deriv_matches_finite_difference () =
  List.iter
    (fun (name, f) ->
      (* Sample away from kinks of the piecewise functions. *)
      List.iter
        (fun x ->
          let h = 1e-6 in
          let fd = (L.eval f (x +. h) -. L.eval f (x -. h)) /. (2. *. h) in
          check_close ~eps:1e-3
            (Printf.sprintf "%s deriv at %.3f" name x)
            fd (L.deriv f x))
        [ 0.1; 0.33; 0.77; 0.9 ])
    (List.filter (fun (n, _) -> n <> "pwl" && n <> "relu") (zoo ()))

let test_deriv_at_kinks () =
  let f = L.relu ~slope:4. ~knee:0.5 in
  check_close "right derivative at knee" 4. (L.deriv f 0.5);
  check_close "below knee" 0. (L.deriv f 0.3)

let test_max_value () =
  check_close "max of affine" 3.5 (L.max_value (L.affine ~slope:3. ~intercept:0.5));
  check_close "max of relu" 2. (L.max_value (L.relu ~slope:4. ~knee:0.5))

let test_validation () =
  check_raises_invalid "negative const" (fun () -> ignore (L.const (-1.)));
  check_raises_invalid "negative slope" (fun () ->
      ignore (L.affine ~slope:(-1.) ~intercept:0.));
  check_raises_invalid "degree 0 monomial" (fun () ->
      ignore (L.monomial ~coeff:1. ~degree:0));
  check_raises_invalid "empty poly" (fun () -> ignore (L.poly [||]));
  check_raises_invalid "negative poly coeff" (fun () ->
      ignore (L.poly [| 1.; -2. |]));
  check_raises_invalid "relu knee out of range" (fun () ->
      ignore (L.relu ~slope:1. ~knee:1.5));
  check_raises_invalid "mm1 capacity <= 1" (fun () ->
      ignore (L.mm1 ~capacity:1.));
  check_raises_invalid "pwl too short" (fun () -> ignore (L.pwl [ (0., 0.) ]));
  check_raises_invalid "pwl not from 0" (fun () ->
      ignore (L.pwl [ (0.1, 0.); (1., 1.) ]));
  check_raises_invalid "pwl not covering 1" (fun () ->
      ignore (L.pwl [ (0., 0.); (0.5, 1.) ]));
  check_raises_invalid "pwl decreasing" (fun () ->
      ignore (L.pwl [ (0., 1.); (1., 0.) ]));
  check_raises_invalid "pwl x not increasing" (fun () ->
      ignore (L.pwl [ (0., 0.); (0.5, 1.); (0.5, 2.); (1., 3.) ]));
  check_raises_invalid "negative scale" (fun () ->
      ignore (L.scale (-2.) (L.const 1.)))

let test_slope_bound_examples () =
  check_close "const slope" 0. (L.slope_bound (L.const 5.));
  check_close "affine slope" 3. (L.slope_bound (L.affine ~slope:3. ~intercept:1.));
  check_close "relu slope" 4. (L.slope_bound (L.relu ~slope:4. ~knee:0.5));
  check_close "mm1 slope" 4. (L.slope_bound (L.mm1 ~capacity:1.5));
  check_close "sum slope" 7.
    (L.slope_bound (L.add (L.linear 3.) (L.relu ~slope:4. ~knee:0.))) ;
  check_close "poly slope at 1" 8.
    (L.slope_bound (L.poly [| 1.; 2.; 3. |]))

let test_elasticity_bounds () =
  check_close "const" 0. (L.elasticity_bound (L.const 3.));
  check_close "pure linear" 1. (L.elasticity_bound (L.linear 2.));
  check_close "affine with intercept" (2. /. 3.)
    (L.elasticity_bound (L.affine ~slope:2. ~intercept:1.));
  check_close "monomial degree d" 7.
    (L.elasticity_bound (L.monomial ~coeff:3. ~degree:7));
  check_close "poly top degree" 3.
    (L.elasticity_bound (L.poly [| 1.; 0.; 0.; 2. |]));
  check_close "poly ignores zero top coeffs" 1.
    (L.elasticity_bound (L.poly [| 1.; 2.; 0.; 0. |]));
  check_true "relu with interior knee is inelastic"
    (L.elasticity_bound (L.relu ~slope:2. ~knee:0.5) = infinity);
  check_close "relu at knee 0 is linear" 1.
    (L.elasticity_bound (L.relu ~slope:2. ~knee:0.));
  check_close "mm1" 2. (L.elasticity_bound (L.mm1 ~capacity:1.5));
  check_close "scale invariant" 7.
    (L.elasticity_bound (L.scale 5. (L.monomial ~coeff:1. ~degree:7)));
  check_true "shift caps the relu blow-up"
    (L.elasticity_bound (L.shift 0.5 (L.relu ~slope:2. ~knee:0.5))
    < infinity);
  check_close "sum takes the max" 4.
    (L.elasticity_bound
       (L.add (L.monomial ~coeff:1. ~degree:4) (L.linear 1.)))

let test_elasticity_bound_is_valid () =
  (* Empirically: x f'(x) <= bound * f(x) on a grid, for elastic zoo
     members. *)
  List.iter
    (fun (name, f) ->
      let bound = L.elasticity_bound f in
      if Float.is_finite bound then
        Array.iter
          (fun x ->
            if x > 0.01 then
              check_true
                (Printf.sprintf "%s elasticity at %.3f" name x)
                (x *. L.deriv f x <= (bound *. L.eval f x) +. 1e-9))
          all_samples)
    (zoo ())

let test_pp_roundtrip_readable () =
  List.iter
    (fun (name, f) ->
      check_true
        (Printf.sprintf "%s prints something" name)
        (String.length (L.to_string f) > 0))
    (zoo ())

let prop_integral_monotone =
  qcheck "qcheck: integral is nondecreasing in x"
    QCheck2.Gen.(pair (float_range 0. 1.) (float_range 0. 1.))
    (fun (a, b) ->
      let f = L.poly [| 0.5; 1.; 2. |] in
      let lo = Float.min a b and hi = Float.max a b in
      L.integral f lo <= L.integral f hi +. 1e-12)

let prop_scale_linearity =
  qcheck "qcheck: scale is multiplicative on eval and integral"
    QCheck2.Gen.(pair (float_range 0. 5.) (float_range 0. 1.))
    (fun (s, x) ->
      let f = L.affine ~slope:2. ~intercept:1. in
      let g = L.scale s f in
      Float.abs (L.eval g x -. (s *. L.eval f x)) < 1e-9
      && Float.abs (L.integral g x -. (s *. L.integral f x)) < 1e-9)

let suite =
  [
    case "known evals" test_eval_known_values;
    case "eval clamps" test_eval_clamps;
    case "pwl interpolation" test_pwl_interpolation;
    case "closed-form integrals" test_integrals_closed_form;
    case "integral = quadrature (zoo)" test_integral_matches_quadrature;
    case "monotone (zoo)" test_monotonicity;
    case "slope bounds valid (zoo)" test_slope_bounds;
    case "deriv = finite difference" test_deriv_matches_finite_difference;
    case "deriv at kinks" test_deriv_at_kinks;
    case "max_value" test_max_value;
    case "constructor validation" test_validation;
    case "slope bound examples" test_slope_bound_examples;
    case "elasticity bounds" test_elasticity_bounds;
    case "elasticity bound validity" test_elasticity_bound_is_valid;
    case "printers" test_pp_roundtrip_readable;
    prop_integral_monotone;
    prop_scale_linearity;
  ]
