open Helpers
module Heap = Staleroute_util.Heap

let test_empty () =
  let h = Heap.create () in
  check_true "fresh heap empty" (Heap.is_empty h);
  check_int "size 0" 0 (Heap.size h);
  check_true "pop empty" (Heap.pop h = None);
  check_true "peek empty" (Heap.peek h = None)

let test_push_pop_order () =
  let h = Heap.create () in
  List.iter
    (fun p -> Heap.push h ~priority:p p)
    [ 5.; 1.; 4.; 2.; 3. ];
  let order = List.init 5 (fun _ -> Heap.pop h) in
  check_true "min-first order"
    (order = [ Some (1., 1.); Some (2., 2.); Some (3., 3.);
               Some (4., 4.); Some (5., 5.) ])

let test_peek_does_not_remove () =
  let h = Heap.create () in
  Heap.push h ~priority:1. "a";
  check_true "peek" (Heap.peek h = Some (1., "a"));
  check_int "size unchanged" 1 (Heap.size h)

let test_fifo_ties () =
  let h = Heap.create () in
  Heap.push h ~priority:1. "first";
  Heap.push h ~priority:1. "second";
  Heap.push h ~priority:1. "third";
  check_true "ties resolve FIFO"
    (Heap.pop h = Some (1., "first")
    && Heap.pop h = Some (1., "second")
    && Heap.pop h = Some (1., "third"))

let test_interleaved () =
  let h = Heap.create () in
  Heap.push h ~priority:3. 3;
  Heap.push h ~priority:1. 1;
  check_true "pop 1" (Heap.pop h = Some (1., 1));
  Heap.push h ~priority:2. 2;
  check_true "pop 2" (Heap.pop h = Some (2., 2));
  check_true "pop 3" (Heap.pop h = Some (3., 3));
  check_true "drained" (Heap.is_empty h)

let test_clear () =
  let h = Heap.create () in
  Heap.push h ~priority:1. ();
  Heap.clear h;
  check_true "cleared" (Heap.is_empty h)

let test_grows () =
  let h = Heap.create () in
  for i = 999 downto 0 do
    Heap.push h ~priority:(float_of_int i) i
  done;
  check_int "size" 1000 (Heap.size h);
  for i = 0 to 999 do
    match Heap.pop h with
    | Some (_, v) -> check_int "sorted drain" i v
    | None -> Alcotest.fail "heap drained early"
  done

let prop_heap_sorts =
  qcheck "qcheck: heap drains in sorted order"
    QCheck2.Gen.(list_size (int_range 0 200) (float_range (-1e3) 1e3))
    (fun priorities ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h ~priority:p ()) priorities;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (p, ()) -> p >= last && drain p
      in
      drain neg_infinity)

let suite =
  [
    case "empty heap" test_empty;
    case "push/pop order" test_push_pop_order;
    case "peek" test_peek_does_not_remove;
    case "FIFO tie-breaking" test_fifo_ties;
    case "interleaved operations" test_interleaved;
    case "clear" test_clear;
    case "growth" test_grows;
    prop_heap_sorts;
  ]
