open Helpers
open Staleroute_graph

let diamond () =
  Digraph.create ~nodes:4 ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]

let cycle3 () = Digraph.create ~nodes:3 ~edges:[ (0, 1); (1, 2); (2, 0) ]

let test_reachable () =
  let g = diamond () in
  let r = Algo.reachable_from g 0 in
  check_true "everything reachable from source" (Array.for_all Fun.id r);
  let r1 = Algo.reachable_from g 1 in
  check_true "sink reachable from 1" r1.(3);
  check_false "source not reachable from 1" r1.(0);
  check_true "self reachable" r1.(1)

let test_co_reachable () =
  let g = diamond () in
  let c = Algo.co_reachable_to g 3 in
  check_true "all co-reach the sink" (Array.for_all Fun.id c);
  let c0 = Algo.co_reachable_to g 0 in
  check_true "only the source co-reaches itself"
    (c0 = [| true; false; false; false |])

let test_on_some_path () =
  let g =
    Digraph.create ~nodes:5 ~edges:[ (0, 1); (1, 2); (3, 2); (1, 4) ]
  in
  (* Node 3 cannot be reached from 0; node 4 cannot reach 2. *)
  let p = Algo.on_some_path g ~src:0 ~dst:2 in
  check_true "path nodes" (p = [| true; true; true; false; false |])

let test_topological_order () =
  let g = diamond () in
  match Algo.topological_order g with
  | None -> Alcotest.fail "diamond is acyclic"
  | Some order ->
      check_int "all nodes" 4 (List.length order);
      let position = Array.make 4 0 in
      List.iteri (fun i v -> position.(v) <- i) order;
      Digraph.fold_edges
        (fun e () ->
          check_true "edges point forward"
            (position.(e.Digraph.src) < position.(e.Digraph.dst)))
        g ();
      (* Deterministic tie-breaking. *)
      check_true "smallest-id-first" (order = [ 0; 1; 2; 3 ])

let test_topological_order_cycle () =
  check_true "cycle has no topological order"
    (Algo.topological_order (cycle3 ()) = None);
  check_false "cycle not acyclic" (Algo.is_acyclic (cycle3 ()));
  check_true "diamond acyclic" (Algo.is_acyclic (diamond ()))

let test_generated_topologies_acyclic () =
  List.iter
    (fun (st : Gen.st) -> check_true "generator acyclic" (Algo.is_acyclic st.Gen.graph))
    [
      Gen.parallel_links 4;
      Gen.braess ();
      Gen.grid ~width:4 ~height:3;
      Gen.ladder 4;
      Gen.layered ~rng:(rng ()) ~layers:3 ~width:3 ~edge_prob:0.5;
    ]

let test_scc_acyclic_graph () =
  let comps = Algo.strongly_connected_components (diamond ()) in
  check_int "one singleton per node" 4 (List.length comps);
  List.iter (fun c -> check_int "singleton" 1 (List.length c)) comps

let test_scc_cycle () =
  let comps = Algo.strongly_connected_components (cycle3 ()) in
  check_int "single component" 1 (List.length comps);
  check_int "contains every node" 3 (List.length (List.hd comps))

let test_scc_mixed () =
  (* 0 <-> 1 cycle feeding an acyclic tail 2 -> 3. *)
  let g =
    Digraph.create ~nodes:4 ~edges:[ (0, 1); (1, 0); (1, 2); (2, 3) ]
  in
  let comps = Algo.strongly_connected_components g in
  check_int "three components" 3 (List.length comps);
  let sizes = List.sort compare (List.map List.length comps) in
  check_true "one 2-cycle and two singletons" (sizes = [ 1; 1; 2 ]);
  (* Reverse topological order of the condensation: callees first. *)
  let index_of v =
    let rec scan i = function
      | [] -> -1
      | c :: rest -> if List.mem v c then i else scan (i + 1) rest
    in
    scan 0 comps
  in
  check_true "sink component first" (index_of 3 < index_of 2);
  check_true "cycle component last" (index_of 2 < index_of 0)

let test_scc_self_contained_nodes () =
  let g = Digraph.create ~nodes:3 ~edges:[] in
  check_int "isolated nodes are singleton components" 3
    (List.length (Algo.strongly_connected_components g))

let prop_scc_partitions =
  qcheck ~count:30 "qcheck: SCCs partition the nodes"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let r = Staleroute_util.Rng.create ~seed () in
      let n = 2 + Staleroute_util.Rng.int r 10 in
      let edges = ref [] in
      for _ = 1 to 2 * n do
        let u = Staleroute_util.Rng.int r n
        and v = Staleroute_util.Rng.int r n in
        if u <> v then edges := (u, v) :: !edges
      done;
      let g = Digraph.create ~nodes:n ~edges:!edges in
      let comps = Algo.strongly_connected_components g in
      let all = List.concat comps in
      List.length all = n
      && List.sort_uniq compare all = List.init n Fun.id)

let suite =
  [
    case "reachable_from" test_reachable;
    case "co_reachable_to" test_co_reachable;
    case "on_some_path" test_on_some_path;
    case "topological order" test_topological_order;
    case "cycle detection" test_topological_order_cycle;
    case "generators acyclic" test_generated_topologies_acyclic;
    case "scc on a DAG" test_scc_acyclic_graph;
    case "scc on a cycle" test_scc_cycle;
    case "scc mixed" test_scc_mixed;
    case "scc isolated nodes" test_scc_self_contained_nodes;
    prop_scc_partitions;
  ]
