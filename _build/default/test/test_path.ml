open Helpers
open Staleroute_graph

let diamond () =
  Digraph.create ~nodes:4 ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3); (1, 2) ]

let test_valid_path () =
  let g = diamond () in
  let p = Path.of_edges g [ 0; 2 ] in
  check_int "src" 0 (Path.src p);
  check_int "dst" 3 (Path.dst p);
  check_int "length" 2 (Path.length p);
  check_true "edge ids" (Path.edge_ids p = [ 0; 2 ]);
  check_true "nodes" (Path.nodes p = [ 0; 1; 3 ])

let test_three_edge_path () =
  let g = diamond () in
  let p = Path.of_edges g [ 0; 4; 3 ] in
  check_true "bridge path nodes" (Path.nodes p = [ 0; 1; 2; 3 ]);
  check_int "length" 3 (Path.length p)

let test_empty_rejected () =
  let g = diamond () in
  check_raises_invalid "empty path" (fun () -> Path.of_edges g [])

let test_nonchaining_rejected () =
  let g = diamond () in
  check_raises_invalid "edges do not chain" (fun () ->
      Path.of_edges g [ 0; 3 ])

let test_cycle_rejected () =
  let g =
    Digraph.create ~nodes:3 ~edges:[ (0, 1); (1, 2); (2, 0); (0, 2) ]
  in
  check_raises_invalid "returning to start" (fun () ->
      Path.of_edges g [ 0; 1; 2 ])

let test_bad_edge_id () =
  let g = diamond () in
  check_raises_invalid "unknown edge id" (fun () -> Path.of_edges g [ 9 ])

let test_mem_edge () =
  let g = diamond () in
  let p = Path.of_edges g [ 0; 2 ] in
  check_true "mem first" (Path.mem_edge p 0);
  check_true "mem second" (Path.mem_edge p 2);
  check_false "not mem" (Path.mem_edge p 1)

let test_equal_compare () =
  let g = diamond () in
  let p1 = Path.of_edges g [ 0; 2 ] in
  let p2 = Path.of_edges g [ 0; 2 ] in
  let p3 = Path.of_edges g [ 1; 3 ] in
  check_true "equal" (Path.equal p1 p2);
  check_false "not equal" (Path.equal p1 p3);
  check_int "compare equal" 0 (Path.compare p1 p2);
  check_true "compare orders" (Path.compare p1 p3 <> 0)

let test_single_edge () =
  let g = Digraph.create ~nodes:2 ~edges:[ (0, 1) ] in
  let p = Path.of_edges g [ 0 ] in
  check_int "src" 0 (Path.src p);
  check_int "dst" 1 (Path.dst p);
  check_true "nodes" (Path.nodes p = [ 0; 1 ])

let test_edge_id_array_matches () =
  let g = diamond () in
  let p = Path.of_edges g [ 0; 4; 3 ] in
  check_true "array view agrees with list"
    (Array.to_list (Path.edge_id_array p) = Path.edge_ids p)

let suite =
  [
    case "valid path" test_valid_path;
    case "three-edge path" test_three_edge_path;
    case "empty rejected" test_empty_rejected;
    case "non-chaining rejected" test_nonchaining_rejected;
    case "cycle rejected" test_cycle_rejected;
    case "bad edge id" test_bad_edge_id;
    case "mem_edge" test_mem_edge;
    case "equal/compare" test_equal_compare;
    case "single edge" test_single_edge;
    case "edge_id_array" test_edge_id_array_matches;
  ]
