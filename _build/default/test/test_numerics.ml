open Helpers
module N = Staleroute_util.Numerics

let test_kahan_vs_naive () =
  (* Alternating large/small values where naive summation loses bits. *)
  let xs = Array.init 10_000 (fun i -> if i mod 2 = 0 then 1e16 else 1.) in
  let xs = Array.append xs [| -5_000. *. 1e16 |] in
  check_close ~eps:1. "kahan keeps the small terms" 5000. (N.kahan_sum xs)

let test_kahan_empty () = check_close "empty sum" 0. (N.kahan_sum [||])

let test_sum_by () =
  check_close "sum of squares" 14. (N.sum_by (fun x -> x *. x) [| 1.; 2.; 3. |])

let test_approx_equal () =
  check_true "exact" (N.approx_equal 1. 1.);
  check_true "within rtol" (N.approx_equal 1. (1. +. 1e-12));
  check_false "clearly different" (N.approx_equal 1. 1.1);
  check_true "atol near zero" (N.approx_equal 0. 1e-13);
  check_false "beyond atol near zero" (N.approx_equal 0. 1e-3)

let test_clamp () =
  check_close "below" 0. (N.clamp ~lo:0. ~hi:1. (-3.));
  check_close "above" 1. (N.clamp ~lo:0. ~hi:1. 3.);
  check_close "inside" 0.5 (N.clamp ~lo:0. ~hi:1. 0.5);
  check_raises_invalid "lo > hi" (fun () -> N.clamp ~lo:1. ~hi:0. 0.5)

let test_linspace () =
  let xs = N.linspace 0. 1. 5 in
  check_int "length" 5 (Array.length xs);
  check_close "first" 0. xs.(0);
  check_close "last" 1. xs.(4);
  check_close "step" 0.25 (xs.(1) -. xs.(0));
  check_raises_invalid "n < 2" (fun () -> N.linspace 0. 1. 1)

let test_logspace () =
  let xs = N.logspace 1. 100. 3 in
  check_close "geometric middle" 10. xs.(1);
  check_raises_invalid "non-positive bound" (fun () -> N.logspace 0. 1. 3)

let test_integrate_polynomial () =
  (* Simpson is exact for cubics. *)
  let f x = (x *. x *. x) -. (2. *. x) +. 1. in
  check_close "cubic integral" 0.25 (N.integrate f 0. 1.)

let test_integrate_sin () =
  check_close ~eps:1e-8 "sin over [0,pi]" 2. (N.integrate sin 0. Float.pi)

let test_integrate_adaptive () =
  check_close ~eps:1e-9 "adaptive sin" 2.
    (N.integrate_adaptive sin 0. Float.pi);
  check_close "adaptive empty range" 0. (N.integrate_adaptive sin 1. 1.);
  (* A function with a sharp kink. *)
  let f x = Float.abs (x -. 0.3) in
  let exact = ((0.3 ** 2.) /. 2.) +. ((0.7 ** 2.) /. 2.) in
  check_close ~eps:1e-8 "adaptive kink" exact (N.integrate_adaptive f 0. 1.)

let test_bisect () =
  let root = N.bisect (fun x -> (x *. x) -. 2.) 0. 2. in
  check_close ~eps:1e-9 "sqrt 2" (sqrt 2.) root;
  check_close "root at endpoint a" 0. (N.bisect (fun x -> x) 0. 1.);
  check_raises_invalid "no sign change" (fun () ->
      N.bisect (fun x -> (x *. x) +. 1.) 0. 1.)

let test_golden_section () =
  let m = N.golden_section_min (fun x -> (x -. 0.7) ** 2.) 0. 1. in
  check_close ~eps:1e-6 "parabola minimum" 0.7 m;
  let m = N.golden_section_min (fun x -> x) 0. 1. in
  check_close ~eps:1e-6 "monotone: minimum at left edge" 0. m;
  let m = N.golden_section_min (fun x -> -.x) 0. 1. in
  check_close ~eps:1e-6 "monotone: minimum at right edge" 1. m

let prop_integrate_linearity =
  qcheck "qcheck: integration is linear in the integrand"
    QCheck2.Gen.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (a, b) ->
      let f x = (a *. x) +. b in
      let exact = (a /. 2.) +. b in
      Float.abs (N.integrate f 0. 1. -. exact) < 1e-9)

let prop_clamp_idempotent =
  qcheck "qcheck: clamp is idempotent"
    QCheck2.Gen.(float_range (-100.) 100.)
    (fun x ->
      let y = N.clamp ~lo:(-1.) ~hi:1. x in
      N.clamp ~lo:(-1.) ~hi:1. y = y)

let prop_bisect_finds_root =
  qcheck "qcheck: bisect root of shifted identity"
    QCheck2.Gen.(float_range (-10.) 10.)
    (fun c ->
      let root = N.bisect (fun x -> x -. c) (-11.) 11. in
      Float.abs (root -. c) < 1e-9)

let suite =
  [
    case "kahan beats naive" test_kahan_vs_naive;
    case "kahan empty" test_kahan_empty;
    case "sum_by" test_sum_by;
    case "approx_equal" test_approx_equal;
    case "clamp" test_clamp;
    case "linspace" test_linspace;
    case "logspace" test_logspace;
    case "simpson exact on cubics" test_integrate_polynomial;
    case "simpson on sin" test_integrate_sin;
    case "adaptive simpson" test_integrate_adaptive;
    case "bisect" test_bisect;
    case "golden section" test_golden_section;
    prop_integrate_linearity;
    prop_clamp_idempotent;
    prop_bisect_finds_root;
  ]
