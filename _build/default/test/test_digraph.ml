open Helpers
open Staleroute_graph

let diamond () =
  Digraph.create ~nodes:4 ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_counts () =
  let g = diamond () in
  check_int "nodes" 4 (Digraph.node_count g);
  check_int "edges" 4 (Digraph.edge_count g)

let test_edge_lookup () =
  let g = diamond () in
  let e = Digraph.edge g 2 in
  check_int "src" 1 e.Digraph.src;
  check_int "dst" 3 e.Digraph.dst;
  check_int "id" 2 e.Digraph.id

let test_edge_out_of_range () =
  let g = diamond () in
  check_raises_invalid "negative id" (fun () -> Digraph.edge g (-1));
  check_raises_invalid "too large id" (fun () -> Digraph.edge g 4)

let test_adjacency () =
  let g = diamond () in
  let out0 = List.map (fun e -> e.Digraph.id) (Digraph.out_edges g 0) in
  check_true "out edges of source" (out0 = [ 0; 1 ]);
  let in3 = List.map (fun e -> e.Digraph.id) (Digraph.in_edges g 3) in
  check_true "in edges of sink" (in3 = [ 2; 3 ]);
  check_int "out degree" 2 (Digraph.out_degree g 0);
  check_int "sink out degree" 0 (Digraph.out_degree g 3)

let test_adjacency_ordering () =
  (* Multi-edges keep id order in adjacency lists. *)
  let g = Digraph.create ~nodes:2 ~edges:[ (0, 1); (0, 1); (0, 1) ] in
  let ids = List.map (fun e -> e.Digraph.id) (Digraph.out_edges g 0) in
  check_true "increasing id order" (ids = [ 0; 1; 2 ])

let test_parallel_edges_allowed () =
  let g = Digraph.create ~nodes:2 ~edges:[ (0, 1); (0, 1) ] in
  check_int "two parallel edges" 2 (Digraph.edge_count g)

let test_mem_edge () =
  let g = diamond () in
  check_true "existing edge" (Digraph.mem_edge g ~src:0 ~dst:1);
  check_false "missing edge" (Digraph.mem_edge g ~src:1 ~dst:0)

let test_invalid_construction () =
  check_raises_invalid "no nodes" (fun () ->
      Digraph.create ~nodes:0 ~edges:[]);
  check_raises_invalid "endpoint out of range" (fun () ->
      Digraph.create ~nodes:2 ~edges:[ (0, 2) ]);
  check_raises_invalid "negative endpoint" (fun () ->
      Digraph.create ~nodes:2 ~edges:[ (-1, 0) ]);
  check_raises_invalid "self loop" (fun () ->
      Digraph.create ~nodes:2 ~edges:[ (1, 1) ])

let test_node_range_checks () =
  let g = diamond () in
  check_raises_invalid "out_edges range" (fun () -> Digraph.out_edges g 4);
  check_raises_invalid "in_edges range" (fun () -> Digraph.in_edges g (-1))

let test_edges_array_fresh () =
  let g = diamond () in
  let es = Digraph.edges g in
  check_int "edges array length" 4 (Array.length es);
  check_true "id order" (Array.for_all (fun e -> es.(e.Digraph.id) == e) es)

let test_fold_edges () =
  let g = diamond () in
  let total = Digraph.fold_edges (fun _ n -> n + 1) g 0 in
  check_int "fold visits all edges" 4 total

let test_empty_graph_ok () =
  let g = Digraph.create ~nodes:3 ~edges:[] in
  check_int "no edges" 0 (Digraph.edge_count g);
  check_true "no out edges" (Digraph.out_edges g 0 = [])

let suite =
  [
    case "counts" test_counts;
    case "edge lookup" test_edge_lookup;
    case "edge range check" test_edge_out_of_range;
    case "adjacency" test_adjacency;
    case "adjacency ordering" test_adjacency_ordering;
    case "parallel edges" test_parallel_edges_allowed;
    case "mem_edge" test_mem_edge;
    case "invalid construction" test_invalid_construction;
    case "node range checks" test_node_range_checks;
    case "edges array" test_edges_array_fresh;
    case "fold_edges" test_fold_edges;
    case "edgeless graph" test_empty_graph_ok;
  ]
