open Helpers
open Staleroute_wardrop
module Common = Staleroute_experiments.Common

let braess_text =
  "# Braess's network\n\
   nodes 4\n\
   edge 0 1\n\
   edge 0 2\n\
   edge 1 3\n\
   edge 2 3\n\
   edge 1 2\n\
   latency 0 (linear 1)\n\
   latency 1 (const 1)\n\
   latency 2 (const 1)\n\
   latency 3 (linear 1)\n\
   latency 4 (const 0)\n\
   commodity 0 3 1.0\n"

let test_parse_braess () =
  match Instance_format.parse braess_text with
  | Error m -> Alcotest.fail m
  | Ok inst ->
      check_int "paths" 3 (Instance.path_count inst);
      check_int "D" 3 (Instance.max_path_length inst);
      check_close "beta" 1. (Instance.beta inst);
      (* Behaves exactly like the built-in Braess instance. *)
      let builtin = Common.braess () in
      check_close "same phi*"
        Frank_wolfe.(equilibrium builtin).objective
        Frank_wolfe.(equilibrium inst).objective

let test_comments_blank_lines_tabs () =
  let text =
    "\n# all comments\nnodes 2\n\n edge\t0 1  # inline comment\n\
     edge 0 1\nlatency 0 (linear 1)\nlatency 1 (const 1)\n\
     commodity 0 1 1\n\n"
  in
  match Instance_format.parse text with
  | Error m -> Alcotest.fail m
  | Ok inst -> check_int "two parallel edges" 2 (Instance.path_count inst)

let roundtrip inst =
  match Instance_format.parse (Instance_format.to_string inst) with
  | Error m -> Alcotest.fail m
  | Ok inst' ->
      check_int "path count preserved" (Instance.path_count inst)
        (Instance.path_count inst');
      check_int "commodities preserved"
        (Instance.commodity_count inst)
        (Instance.commodity_count inst');
      (* Latency structure preserved: potentials agree at the uniform
         flow. *)
      check_close ~eps:1e-12 "potential preserved"
        (Potential.phi inst (Flow.uniform inst))
        (Potential.phi inst' (Flow.uniform inst'))

let test_roundtrip_builtins () =
  List.iter roundtrip
    [
      Common.braess ();
      Common.two_link ~beta:4.;
      Common.parallel 5;
      Common.grid33 ();
      Common.two_commodity ();
      Common.poly_parallel ~m:3 ~degree:4;
      Common.layered_random ~seed:5;
    ]

let expect_error fragment text =
  match Instance_format.parse text with
  | Ok _ -> Alcotest.failf "expected an error mentioning %S" fragment
  | Error m ->
      check_true
        (Printf.sprintf "error %S mentions %S" m fragment)
        (Str_contains.contains m fragment)

let test_errors () =
  expect_error "nodes" "edge 0 1\n";
  expect_error "missing 'nodes'" "# empty\n";
  expect_error "duplicate 'nodes'" "nodes 2\nnodes 3\n";
  expect_error "node count" "nodes zero\n";
  expect_error "usage: edge" "nodes 2\nedge 0\n";
  expect_error "no latency"
    "nodes 2\nedge 0 1\ncommodity 0 1 1\n";
  expect_error "unknown edge"
    "nodes 2\nedge 0 1\nlatency 0 (const 1)\nlatency 3 (const 1)\n\
     commodity 0 1 1\n";
  expect_error "duplicate latency"
    "nodes 2\nedge 0 1\nlatency 0 (const 1)\nlatency 0 (const 2)\n\
     commodity 0 1 1\n";
  expect_error "no commodities"
    "nodes 2\nedge 0 1\nlatency 0 (const 1)\n";
  expect_error "unknown keyword" "nodes 2\nfrobnicate 1\n";
  expect_error "latency:" "nodes 2\nedge 0 1\nlatency 0 (bogus 1)\n";
  expect_error "demand"
    "nodes 2\nedge 0 1\nlatency 0 (const 1)\ncommodity 0 1 0\n";
  (* Structural validation delegated to Instance.create. *)
  expect_error "demand"
    "nodes 2\nedge 0 1\nlatency 0 (const 1)\ncommodity 0 1 0.5\n"

let test_error_carries_line_number () =
  expect_error "line 3" "nodes 2\nedge 0 1\nbogus\n"

let test_file_io () =
  let inst = Common.braess () in
  let path = Filename.temp_file "staleroute" ".inst" in
  (match Instance_format.to_file path inst with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match Instance_format.of_file path with
  | Ok inst' ->
      check_int "file roundtrip" (Instance.path_count inst)
        (Instance.path_count inst')
  | Error m -> Alcotest.fail m);
  Sys.remove path;
  match Instance_format.of_file "/nonexistent/definitely.inst" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an IO error"

let test_path_cap_passed_through () =
  let st = Staleroute_graph.Gen.ladder 6 in
  let m = Staleroute_graph.Digraph.edge_count st.Staleroute_graph.Gen.graph in
  let inst =
    Instance.create ~graph:st.Staleroute_graph.Gen.graph
      ~latencies:
        (Array.init m (fun _ -> Staleroute_latency.Latency.const 1.))
      ~commodities:
        [
          Commodity.single ~src:st.Staleroute_graph.Gen.src
            ~dst:st.Staleroute_graph.Gen.dst;
        ]
      ()
  in
  let text = Instance_format.to_string inst in
  match Instance_format.parse ~max_paths_per_commodity:10 text with
  | Error m -> check_true "cap error" (Str_contains.contains m "paths")
  | Ok _ -> Alcotest.fail "expected the path cap to fire"

let suite =
  [
    case "parse braess" test_parse_braess;
    case "comments / blanks / tabs" test_comments_blank_lines_tabs;
    case "roundtrip builtins" test_roundtrip_builtins;
    case "errors" test_errors;
    case "line numbers in errors" test_error_carries_line_number;
    case "file IO" test_file_io;
    case "path cap" test_path_cap_passed_through;
  ]
