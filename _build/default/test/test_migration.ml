open Helpers
open Staleroute_dynamics

let test_better_response () =
  let mu = Migration.prob Migration.Better_response in
  check_close "improves -> 1" 1. (mu ~ell_p:2. ~ell_q:1.);
  check_close "equal -> 0" 0. (mu ~ell_p:1. ~ell_q:1.);
  check_close "worse -> 0" 0. (mu ~ell_p:1. ~ell_q:2.);
  check_true "not smooth" (Migration.alpha Migration.Better_response = None)

let test_linear () =
  let rule = Migration.Linear { ell_max = 2. } in
  let mu = Migration.prob rule in
  check_close "half gain" 0.25 (mu ~ell_p:1. ~ell_q:0.5);
  check_close "no gain" 0. (mu ~ell_p:0.5 ~ell_q:1.);
  check_close "full spread" 1. (mu ~ell_p:2. ~ell_q:0.);
  check_true "alpha = 1/lmax" (Migration.alpha rule = Some 0.5)

let test_linear_caps_at_one () =
  (* If latencies exceed the declared lmax the probability must clamp. *)
  let mu = Migration.prob (Migration.Linear { ell_max = 1. }) in
  check_close "clamped" 1. (mu ~ell_p:5. ~ell_q:0.)

let test_scaled_linear () =
  let rule = Migration.Scaled_linear { alpha = 0.1 } in
  let mu = Migration.prob rule in
  check_close "alpha times gain" 0.05 (mu ~ell_p:1. ~ell_q:0.5);
  check_close "cap at 1" 1. (mu ~ell_p:100. ~ell_q:0.);
  check_true "declared alpha" (Migration.alpha rule = Some 0.1)

let test_relative () =
  let rule = Migration.Relative { scale = 0.5 } in
  let mu = Migration.prob rule in
  (* scale * (lP - lQ)/lP. *)
  check_close "relative slack" 0.25 (mu ~ell_p:1. ~ell_q:0.5);
  check_close "no gain" 0. (mu ~ell_p:0.5 ~ell_q:1.);
  check_close "zero origin latency guarded" 0. (mu ~ell_p:0. ~ell_q:0.);
  check_close "full slack capped by scale" 0.5 (mu ~ell_p:5. ~ell_q:0.);
  check_true "relative is not alpha-smooth" (Migration.alpha rule = None);
  check_true "relative is selfish"
    (Migration.is_selfish rule ~migration_prob_samples:21)

let test_relative_scale_invariance () =
  (* The whole point: the rule only sees latency ratios. *)
  let mu = Migration.prob (Migration.Relative { scale = 1. }) in
  check_close "scale-free" (mu ~ell_p:1. ~ell_q:0.25)
    (mu ~ell_p:100. ~ell_q:25.)

let test_custom () =
  let rule =
    Migration.Custom
      {
        Migration.name = "quadratic";
        prob =
          (fun ~ell_p ~ell_q ->
            if ell_p > ell_q then
              Float.min 1. (0.25 *. ((ell_p -. ell_q) ** 2.))
            else 0.);
        alpha = None;
      }
  in
  check_close "quadratic prob" 0.25
    (Migration.prob rule ~ell_p:1. ~ell_q:0.);
  check_true "custom name" (Migration.name rule = "quadratic")

let test_selfishness_check () =
  check_true "linear selfish"
    (Migration.is_selfish (Migration.Linear { ell_max = 1. })
       ~migration_prob_samples:21);
  check_true "better response selfish"
    (Migration.is_selfish Migration.Better_response
       ~migration_prob_samples:21);
  let bad =
    Migration.Custom
      {
        Migration.name = "migrates-to-worse";
        prob = (fun ~ell_p:_ ~ell_q:_ -> 0.5);
        alpha = None;
      }
  in
  check_false "non-selfish detected"
    (Migration.is_selfish bad ~migration_prob_samples:21)

let test_smoothness_check () =
  check_true "linear is (1/lmax)-smooth"
    (Migration.check_smoothness
       (Migration.Linear { ell_max = 2. })
       ~samples:50 ~ell_max:2.);
  check_true "scaled linear is alpha-smooth"
    (Migration.check_smoothness
       (Migration.Scaled_linear { alpha = 0.3 })
       ~samples:50 ~ell_max:5.);
  check_false "better response is not smooth"
    (Migration.check_smoothness Migration.Better_response ~samples:50
       ~ell_max:1.);
  (* A custom rule that lies about its alpha must be caught. *)
  let liar =
    Migration.Custom
      {
        Migration.name = "liar";
        prob = (fun ~ell_p ~ell_q -> if ell_p > ell_q then 1. else 0.);
        alpha = Some 0.001;
      }
  in
  check_false "overclaimed smoothness detected"
    (Migration.check_smoothness liar ~samples:50 ~ell_max:1.)

let test_probabilities_bounded () =
  let rules =
    [
      Migration.Better_response;
      Migration.Linear { ell_max = 0.5 };
      Migration.Scaled_linear { alpha = 10. };
    ]
  in
  List.iter
    (fun rule ->
      let mu = Migration.prob rule in
      List.iter
        (fun (p, q) ->
          let v = mu ~ell_p:p ~ell_q:q in
          check_true "in [0,1]" (v >= 0. && v <= 1.))
        [ (0., 0.); (10., 0.); (0., 10.); (1., 0.999); (5., 5.) ])
    rules

let prop_linear_smoothness_definition =
  qcheck ~count:200 "qcheck: linear rule satisfies Definition 2"
    QCheck2.Gen.(pair (float_range 0. 10.) (float_range 0. 10.))
    (fun (a, b) ->
      let ell_p = Float.max a b and ell_q = Float.min a b in
      let mu =
        Migration.prob (Migration.Linear { ell_max = 10. }) ~ell_p ~ell_q
      in
      mu <= (0.1 *. (ell_p -. ell_q)) +. 1e-12)

let suite =
  [
    case "better response" test_better_response;
    case "linear" test_linear;
    case "linear caps" test_linear_caps_at_one;
    case "scaled linear" test_scaled_linear;
    case "relative" test_relative;
    case "relative scale invariance" test_relative_scale_invariance;
    case "custom" test_custom;
    case "selfishness check" test_selfishness_check;
    case "smoothness check" test_smoothness_check;
    case "probabilities bounded" test_probabilities_bounded;
    prop_linear_smoothness_definition;
  ]
