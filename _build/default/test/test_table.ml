open Helpers
module Table = Staleroute_util.Table

let sample () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "1"; "x" ];
  Table.add_row t [ "22"; "yy" ];
  t

let test_rows_in_order () =
  let t = sample () in
  check_int "row count" 2 (Table.row_count t);
  check_true "order preserved" (Table.rows t = [ [ "1"; "x" ]; [ "22"; "yy" ] ])

let test_arity_check () =
  let t = sample () in
  check_raises_invalid "short row" (fun () -> Table.add_row t [ "only-one" ]);
  check_raises_invalid "long row" (fun () ->
      Table.add_row t [ "1"; "2"; "3" ])

let test_to_string_contains_everything () =
  let s = Table.to_string (sample ()) in
  List.iter
    (fun needle ->
      check_true
        (Printf.sprintf "rendering contains %S" needle)
        (let re = Str_contains.contains s needle in
         re))
    [ "demo"; "a"; "b"; "22"; "yy" ]

let test_csv () =
  let t = sample () in
  check_true "csv lines"
    (Table.to_csv t = "a,b\n1,x\n22,yy")

let test_csv_quoting () =
  let t = Table.create ~title:"q" ~columns:[ "c" ] in
  Table.add_row t [ "has,comma" ];
  Table.add_row t [ "has\"quote" ];
  check_true "quoted csv"
    (Table.to_csv t = "c\n\"has,comma\"\n\"has\"\"quote\"")

let test_cells () =
  check_true "float cell" (Table.cell_float ~decimals:2 3.14159 = "3.14");
  check_true "int cell" (Table.cell_int 42 = "42");
  check_true "sci cell" (Table.cell_sci 0.000123 = "0.000123")

let test_accessors () =
  let t = sample () in
  check_true "title" (Table.title t = "demo");
  check_true "columns" (Table.columns t = [ "a"; "b" ])

let suite =
  [
    case "rows in order" test_rows_in_order;
    case "arity check" test_arity_check;
    case "rendering completeness" test_to_string_contains_everything;
    case "csv" test_csv;
    case "csv quoting" test_csv_quoting;
    case "cell formatting" test_cells;
    case "accessors" test_accessors;
  ]
