open Helpers
open Staleroute_wardrop
open Staleroute_dynamics
module Common = Staleroute_experiments.Common

let test_replicator_components () =
  let inst = Common.braess () in
  let p = Policy.replicator inst in
  check_true "proportional sampling" (p.Policy.sampling = Sampling.Proportional);
  check_true "linear migration with instance lmax"
    (Migration.alpha p.Policy.migration = Some (1. /. Instance.ell_max inst))

let test_uniform_linear_components () =
  let inst = Common.braess () in
  let p = Policy.uniform_linear inst in
  check_true "uniform sampling" (p.Policy.sampling = Sampling.Uniform)

let test_safe_period_formula () =
  let inst = Common.braess () in
  (* D = 3, beta = 1, alpha = 1/2 -> T* = 1/(4*3*0.5*1) = 1/6. *)
  let p = Policy.uniform_linear inst in
  match Policy.safe_update_period inst p with
  | Some t -> check_close "T* = 1/(4 D alpha beta)" (1. /. 6.) t
  | None -> Alcotest.fail "smooth policy must have a safe period"

let test_safe_period_two_link () =
  let inst = Common.two_link ~beta:4. in
  (* D = 1, beta = 4, lmax = 2 -> alpha = 1/2, T* = 1/8. *)
  match Policy.safe_update_period inst (Policy.replicator inst) with
  | Some t -> check_close "two-link T*" 0.125 t
  | None -> Alcotest.fail "expected a safe period"

let test_best_response_has_no_safe_period () =
  let inst = Common.braess () in
  let p = Policy.better_response ~sampling:Sampling.Uniform in
  check_true "no T* for better response"
    (Policy.safe_update_period inst p = None)

let test_constant_latencies_safe_at_any_period () =
  let st = Staleroute_graph.Gen.parallel_links 2 in
  let inst =
    Instance.create ~graph:st.Staleroute_graph.Gen.graph
      ~latencies:
        [| Staleroute_latency.Latency.const 1.;
           Staleroute_latency.Latency.const 1. |]
      ~commodities:[ Commodity.single ~src:0 ~dst:1 ]
      ()
  in
  match Policy.safe_update_period inst (Policy.uniform_linear inst) with
  | Some t -> check_true "beta = 0: any period is safe" (t = infinity)
  | None -> Alcotest.fail "smooth policy"

let test_safe_period_scales_inversely () =
  (* At a fixed migration constant alpha, doubling the slope halves T*.
     (The replicator's alpha = 1/lmax itself depends on beta, so the
     fixed-alpha policy isolates the 1/beta factor.) *)
  let fixed_alpha =
    Policy.make ~sampling:Sampling.Uniform
      ~migration:(Migration.Scaled_linear { alpha = 0.5 })
  in
  let t_of beta =
    let inst = Common.two_link ~beta in
    Option.get (Policy.safe_update_period inst fixed_alpha)
  in
  check_close ~eps:1e-9 "T*(2 beta) = T*(beta)/2" (t_of 2. /. 2.) (t_of 4.);
  (* The replicator on the two-link family: alpha = 2/beta cancels beta,
     so T* = 1/8 independent of beta. *)
  let t_repl beta =
    let inst = Common.two_link ~beta in
    Option.get (Policy.safe_update_period inst (Policy.replicator inst))
  in
  check_close ~eps:1e-9 "replicator T* is beta-free here" (t_repl 2.)
    (t_repl 4.)

let test_frv_policy () =
  let p = Policy.frv () in
  check_true "mixed sampling" (p.Policy.sampling = Sampling.Mixed 0.25);
  check_true "relative migration"
    (p.Policy.migration = Migration.Relative { scale = 0.5 });
  check_true "frv is not alpha-smooth" (Policy.alpha p = None);
  let inst = Common.braess () in
  check_true "hence no slope-based safe period"
    (Policy.safe_update_period inst p = None)

let test_elastic_update_period () =
  (* poly_parallel of degree d: elasticity bound is d (the intercept
     only lowers it), D = 1 -> T_e = 1/(4 d). *)
  let t_of d =
    Policy.elastic_update_period (Common.poly_parallel ~m:4 ~degree:d)
  in
  check_close "degree 2" (1. /. 8.) (t_of 2);
  check_close "degree 8" (1. /. 32.) (t_of 8);
  (* Constant latencies: infinite elastic period. *)
  let st = Staleroute_graph.Gen.parallel_links 2 in
  let inst =
    Instance.create ~graph:st.Staleroute_graph.Gen.graph
      ~latencies:
        [| Staleroute_latency.Latency.const 1.;
           Staleroute_latency.Latency.const 2. |]
      ~commodities:[ Commodity.single ~src:0 ~dst:1 ]
      ()
  in
  check_true "constant latencies: infinity"
    (Policy.elastic_update_period inst = infinity)

let test_names () =
  let inst = Common.braess () in
  check_true "replicator name mentions proportional"
    (Str_contains.contains (Policy.name (Policy.replicator inst)) "proportional");
  check_true "logit name mentions logit"
    (Str_contains.contains
       (Policy.name (Policy.best_response_approx inst ~c:3.))
       "logit")

let suite =
  [
    case "replicator components" test_replicator_components;
    case "uniform/linear components" test_uniform_linear_components;
    case "safe period formula" test_safe_period_formula;
    case "safe period (two-link)" test_safe_period_two_link;
    case "no safe period for better response"
      test_best_response_has_no_safe_period;
    case "constant latencies" test_constant_latencies_safe_at_any_period;
    case "safe period scaling" test_safe_period_scales_inversely;
    case "frv policy" test_frv_policy;
    case "elastic update period" test_elastic_update_period;
    case "names" test_names;
  ]
