(* Benchmark and experiment harness.

   Usage:
     main.exe              run every experiment (full size) and print tables
     main.exe e1 .. e17    run a single experiment
     main.exe micro        run the Bechamel microbenchmarks (also writes
                           the BENCH_rates.json perf trajectory)
     main.exe bench-smoke  tiny-quota kernel-vs-reference comparison only;
                           writes BENCH_rates.json (also `dune build
                           @bench-smoke`)
     main.exe trace-smoke  instrumented mini-runs checking probe event
                           counts and the allocation-free disabled path;
                           writes BENCH_trace.json (also `dune build
                           @trace-smoke`)
     main.exe fault-smoke  robustness contract: fault-plan purity, faulted
                           trace determinism, guard policies on a NaN
                           workload, checkpoint/resume byte-identity and
                           the T/(1-p) period inflation; writes
                           BENCH_faults.json (also `dune build
                           @fault-smoke`)
     main.exe colgen-smoke
                           column-generation ground truth: small-instance
                           differential vs the enumerating core, full-seed
                           bitwise trajectory identity, a 10^4+-edge
                           layered-DAG growth run, and checkpoint/resume
                           with mid-run growth; writes BENCH_colgen.json
                           (also `dune build @colgen-smoke`)
     main.exe parallel-smoke
                           determinism checks for the domain pool (pooled
                           output and traces must be byte-identical to
                           sequential) plus pooled-vs-sequential timings;
                           writes BENCH_parallel.json (also `dune build
                           @parallel-smoke`); add "full" to also time the
                           full E1-E17 suite at -j 1 vs -j N
     main.exe obs-smoke    observability contract: trace diff/read-back,
                           disabled-span allocation freedom, span profile
                           sanity and the comparator's tolerance classes;
                           writes BENCH_obs.json (also `dune build
                           @obs-smoke`)
     main.exe compare BASELINE_DIR [FRESH_DIR]
                           regression gate: compare committed BENCH_*.json
                           baselines against freshly written bench output
                           (default FRESH_DIR: _build/default/bench);
                           timings advisory, contract fields exact
     main.exe all          experiments + microbenchmarks
   Options: "quick" uses the reduced parameter sets; "-j N" runs
   experiments across N domains (default
   Domain.recommended_domain_count; output stays byte-identical to
   -j 1); "metrics" instruments every experiment and prints its metric
   snapshot (a single-name metrics or profile run ignores -j: the
   ambient registry is domain-local, so the instrumented experiment
   runs on one domain); "profile" records wall-clock timing spans and
   prints the per-experiment span profile; "csv=DIR" exports tables;
   "json=FILE" redirects the perf trajectory. *)

open Staleroute_experiments
module Table = Staleroute_util.Table
module Pool = Staleroute_util.Pool
module Probe = Staleroute_obs.Probe
module Metrics = Staleroute_obs.Metrics
module Trace_export = Staleroute_obs.Trace_export
module Trace_reader = Staleroute_obs.Trace_reader
module Span = Staleroute_obs.Span

(* Provenance block stamped into every BENCH_*.json.  utc_written and
   git_commit are wall-clock/host facts, not measurements: the bench
   comparator ignores every meta.* key except meta.schema, and the
   deterministic snapshot checks never read BENCH files. *)
let bench_schema = 1

let meta_block () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  let utc =
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
      (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
      t.Unix.tm_sec
  in
  let commit =
    match Unix.open_process_in "git rev-parse HEAD 2>/dev/null" with
    | exception _ -> None
    | ic -> (
        let line =
          match input_line ic with
          | l -> Some (String.trim l)
          | exception End_of_file -> None
        in
        match (Unix.close_process_in ic, line) with
        | Unix.WEXITED 0, Some c when c <> "" -> Some c
        | _ -> None)
  in
  Printf.sprintf "  \"meta\": { \"schema\": %d, \"utc_written\": %S%s },\n"
    bench_schema utc
    (match commit with
    | Some c -> Printf.sprintf ", \"git_commit\": %S" c
    | None -> "")

(* When [csv_dir] is set ("csv=DIR" argument), every printed table is
   also written to DIR/<slug>.csv. *)
let csv_dir = ref None

let slug_of_title title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '-')
    title
  |> fun s ->
  (* Collapse runs of dashes and trim. *)
  let buf = Buffer.create (String.length s) in
  let last_dash = ref true in
  String.iter
    (fun c ->
      if c = '-' then begin
        if not !last_dash then Buffer.add_char buf '-';
        last_dash := true
      end
      else begin
        Buffer.add_char buf c;
        last_dash := false
      end)
    s;
  let s = Buffer.contents buf in
  if String.length s > 60 then String.sub s 0 60 else s

(* Experiments render into per-experiment buffers (not straight to
   stdout) so a pooled run can emit them in canonical order — stdout is
   byte-identical at any -j.  CSV files are still written from inside
   the task: paths are distinct per table, contents deterministic. *)
let buffer_tables out tables =
  List.iter
    (fun table ->
      Buffer.add_string out (Table.to_string table);
      Buffer.add_char out '\n';
      match !csv_dir with
      | None -> ()
      | Some dir ->
          let path =
            Filename.concat dir (slug_of_title (Table.title table) ^ ".csv")
          in
          let oc = open_out path in
          output_string oc (Table.to_csv table);
          output_char oc '\n';
          close_out oc;
          Buffer.add_string out (Printf.sprintf "(csv written to %s)\n" path))
    tables

let buffer_figures out figures =
  List.iter
    (fun fig ->
      Buffer.add_string out fig;
      Buffer.add_char out '\n')
    figures

(* Sweep experiments accept the pool and fan their grid points out; the
   rest run sequentially inside their task. *)
let experiments =
  [
    ( "e1",
      fun ~quick ~pool:_ ~out ->
        buffer_tables out (E1_oscillation.tables ~quick ());
        buffer_figures out (E1_oscillation.figures ~quick ()) );
    ( "e2",
      fun ~quick ~pool:_ ~out ->
        buffer_tables out (E2_fresh_convergence.tables ~quick ()) );
    ( "e3",
      fun ~quick ~pool:_ ~out ->
        buffer_tables out (E3_stale_convergence.tables ~quick ()) );
    ( "e4",
      fun ~quick ~pool:_ ~out ->
        buffer_tables out (E4_potential_inequality.tables ~quick ()) );
    ( "e5",
      fun ~quick ~pool ~out ->
        buffer_tables out (E5_uniform_scaling.tables ?pool ~quick ()) );
    ( "e6",
      fun ~quick ~pool ~out ->
        buffer_tables out (E6_proportional_scaling.tables ?pool ~quick ()) );
    ( "e7",
      fun ~quick ~pool ~out ->
        buffer_tables out (E7_delta_eps_scaling.tables ?pool ~quick ()) );
    ( "e8",
      fun ~quick ~pool:_ ~out ->
        buffer_tables out (E8_finite_population.tables ~quick ()) );
    ( "e9",
      fun ~quick ~pool:_ ~out ->
        buffer_tables out (E9_ablation.tables ~quick ()) );
    ( "e10",
      fun ~quick ~pool:_ ~out ->
        buffer_tables out (E10_elastic_policy.tables ~quick ()) );
    ( "e11",
      fun ~quick ~pool:_ ~out ->
        buffer_tables out (E11_stale_vs_random.tables ~quick ()) );
    ( "e12",
      fun ~quick ~pool:_ ~out ->
        buffer_tables out (E12_multicommodity.tables ~quick ()) );
    ( "e13",
      fun ~quick ~pool:_ ~out ->
        buffer_tables out (E13_convergence_rate.tables ~quick ()) );
    ( "e14",
      fun ~quick ~pool:_ ~out ->
        buffer_tables out (E14_synchronous_rounds.tables ~quick ()) );
    ( "e15",
      fun ~quick ~pool:_ ~out ->
        buffer_tables out (E15_polled_information.tables ~quick ()) );
    ( "e16",
      fun ~quick ~pool ~out ->
        buffer_tables out (E16_phase_diagram.tables ?pool ~quick ());
        buffer_figures out (E16_phase_diagram.figures ?pool ~quick ()) );
    ( "e17",
      fun ~quick ~pool ~out ->
        buffer_tables out (E17_unreliable_board.tables ?pool ~quick ()) );
    ( "e18",
      fun ~quick ~pool ~out ->
        buffer_tables out (E18_colgen_scaling.tables ?pool ~quick ()) );
    ( "e19",
      fun ~quick ~pool ~out ->
        buffer_tables out (E19_edge_outage.tables ?pool ~quick ()) );
  ]

let with_metrics = ref false

(* "profile": every Common.run reports wall-clock spans into an ambient
   recorder, printed per experiment.  Span data is wall-clock only and
   never feeds a byte-identity surface, so this flag (unlike plain runs)
   makes no determinism promise about the profile table itself. *)
let with_profile = ref false

(* The one wall-clock-derived metric ("kernel_build_ns") is dropped
   from the bench snapshot: everything the bench prints is then a pure
   function of simulated state, so metrics-mode output is byte-stable
   across runs and across -j. *)
let deterministic_snapshot snapshot =
  List.filter
    (fun (name, _) ->
      not
        (String.length name >= 3
        && String.sub name (String.length name - 3) 3 = "_ns"))
    snapshot

(* Render one experiment to a string.  Runs entirely inside the calling
   domain; ambient instrumentation is domain-local, so concurrent
   experiments on other domains keep their own registries. *)
let run_experiment ~quick ~pool name =
  match List.assoc_opt name experiments with
  | Some f ->
      let out = Buffer.create 4096 in
      Buffer.add_string out
        (Printf.sprintf "\n### Experiment %s ###\n"
           (String.uppercase_ascii name));
      if !with_metrics || !with_profile then begin
        (* Ambient instrumentation: every Common.run inside the
           experiment reports into this registry. *)
        let metrics = Metrics.create () in
        let spans = if !with_profile then Span.create () else Span.null in
        Common.set_instrumentation ~spans ~probe:Probe.null ~metrics ();
        Fun.protect
          ~finally:(fun () -> Common.clear_instrumentation ())
          (fun () -> f ~quick ~pool ~out);
        if !with_metrics then
          buffer_tables out
            [
              Metrics.to_table ~title:(name ^ " metrics")
                (deterministic_snapshot (Metrics.snapshot metrics));
            ];
        if !with_profile then
          buffer_tables out [ Span.to_table (Span.profile spans) ]
      end
      else f ~quick ~pool ~out;
      Buffer.contents out
  | None ->
      Printf.eprintf "unknown experiment %S\n" name;
      exit 2

(* Render the single-name invocation at parallelism [jobs]: the one
   experiment gets the pool itself so its sweep fans out.  Exception:
   metrics and profile modes.  The ambient registry installed by
   Common.set_instrumentation is domain-local (Domain.DLS), so sweep
   cells executed on worker domains would report into Metrics.null and
   the snapshot would silently depend on scheduling.  An instrumented
   experiment therefore runs entirely on the domain holding the
   registry — sequential, but correct and byte-identical to -j 1
   (parallel-smoke check 4 pins this down). *)
let run_single_experiment ~quick ~jobs name =
  if jobs > 1 && not (!with_metrics || !with_profile) then
    Pool.with_pool ~domains:jobs (fun pool ->
        run_experiment ~quick ~pool name)
  else run_experiment ~quick ~pool:None name

(* Run a list of experiments at parallelism [jobs] and print their
   outputs in list order.  A single experiment gets the pool itself
   (its sweep fans out); several experiments fan out across the pool,
   each sequential inside its task — the pool rejects nesting, and this
   split keeps every domain busy in both shapes. *)
let run_experiments ~quick ~jobs names =
  List.iter
    (fun name ->
      if not (List.mem_assoc name experiments) then begin
        Printf.eprintf "unknown experiment %S\n" name;
        exit 2
      end)
    names;
  match names with
  | [ name ] ->
      print_string (run_single_experiment ~quick ~jobs name);
      flush stdout
  | _ when jobs > 1 ->
      Pool.with_pool ~domains:jobs (fun pool ->
          Pool.parallel_map ~pool
            (fun name -> run_experiment ~quick ~pool:None name)
            (Array.of_list names))
      |> Array.iter print_string;
      flush stdout
  | _ ->
      List.iter
        (fun name ->
          print_string (run_experiment ~quick ~pool:None name);
          flush stdout)
        names

(* --- Bechamel microbenchmarks of the hot paths --- *)

(* A multi-commodity load-balancing workload for the rate benchmarks:
   [commodities] commodities splitting the unit demand over [m] parallel
   links each, i.e. [commodities * m] paths in the global index. *)
let multicommodity_parallel ?(commodities = 2) m =
  let open Staleroute_wardrop in
  let st = Staleroute_graph.Gen.parallel_links m in
  let latencies =
    Array.init m (fun j ->
        Staleroute_latency.Latency.affine
          ~slope:(float_of_int (1 + (j mod 3)))
          ~intercept:(0.3 *. float_of_int j /. float_of_int m))
  in
  Instance.create ~graph:st.Staleroute_graph.Gen.graph ~latencies
    ~commodities:
      (List.init commodities (fun _ ->
           Commodity.make ~src:st.Staleroute_graph.Gen.src
             ~dst:st.Staleroute_graph.Gen.dst
             ~demand:(1. /. float_of_int commodities)))
    ()

let ols_estimate results name =
  let found = ref None in
  Hashtbl.iter
    (fun key ols ->
      if key = name then
        match Bechamel.Analyze.OLS.estimates ols with
        | Some (x :: _) -> found := Some x
        | _ -> ())
    results;
  !found

(* A feasible flow whose {e shares} differ from [flow] on every path —
   the board delta the kernel-update benchmarks alternate against.  A
   uniform rescale would be useless here: projection would normalise it
   straight back to [flow] and the "update" under test would detect
   zero dirty entries and do nothing. *)
let perturb_shares inst flow =
  Staleroute_wardrop.Flow.project inst
    (Staleroute_util.Vec.init
       (Staleroute_wardrop.Instance.path_count inst)
       (fun i ->
         Staleroute_util.Vec.get flow i
         *. (1. +. (0.01 *. float_of_int (1 + (i mod 3))))))

(* Words allocated on the minor heap per in-place Euler step, measured
   by differencing two step counts so per-call setup cancels out. *)
let euler_words_per_step inst kernel =
  let open Staleroute_wardrop in
  let open Staleroute_dynamics in
  let pool =
    Staleroute_util.Vec.Pool.create ~dim:(Instance.path_count inst)
  in
  let measure steps =
    let f = Flow.uniform inst in
    Integrator.integrate_phase_into Integrator.Euler inst ~pool
      ~deriv_into:(Rate_kernel.flow_derivative_into kernel)
      ~f ~tau:0.001 ~steps:1;
    let before = Gc.minor_words () in
    Integrator.integrate_phase_into Integrator.Euler inst ~pool
      ~deriv_into:(Rate_kernel.flow_derivative_into kernel)
      ~f ~tau:0.001 ~steps;
    Gc.minor_words () -. before
  in
  (measure 1001 -. measure 1) /. 1000.

(* The perf-trajectory benchmark: reference vs compiled rate kernel on
   the multi-commodity workload.  Prints a table and exports
   BENCH_rates.json so later PRs can track regressions. *)
let bench_rates ~quota_s ~json_path () =
  let open Bechamel in
  let open Staleroute_wardrop in
  let open Staleroute_dynamics in
  let m = 20 in
  let inst = multicommodity_parallel m in
  let policy = Policy.uniform_linear inst in
  let flow = Flow.uniform inst in
  let board = Bulletin_board.post inst ~time:0. flow in
  let kernel = Rate_kernel.build inst policy ~board in
  let dst = Staleroute_util.Vec.create (Instance.path_count inst) 0. in
  (* The update benchmark alternates between two posted boards whose
     flows differ everywhere — the fresh-mode worst case, where every
     latency moves each step and the incremental path degenerates to a
     full (but specialized, allocation-free) refresh. *)
  let flow2 = perturb_shares inst flow in
  let board2 = Bulletin_board.post inst ~time:1e-3 flow2 in
  let upd_kernel = Rate_kernel.build inst policy ~board in
  let flip = ref false in
  (* The sparse-delta workload: a two-path transfer within one
     commodity.  Two flow entries move, two edges go dirty, and only
     the four paths over them change — the steady-state fresh-mode
     step, where [repost] + [update ?changed] replace the full post and
     the dense refresh. *)
  let flow3 =
    let g = Staleroute_util.Vec.copy flow in
    Staleroute_util.Vec.set g 0 (Staleroute_util.Vec.get g 0 -. 0.004);
    Staleroute_util.Vec.set g 1 (Staleroute_util.Vec.get g 1 +. 0.004);
    g
  in
  let delta = Bulletin_board.delta () in
  let board3 =
    Bulletin_board.repost ~delta inst ~prev:board ~time:1e-3 flow3
  in
  (* The changed set is symmetric (same paths move bits in either
     direction), so one copy serves the whole flip chain. *)
  let changed =
    ( Array.sub
        (Bulletin_board.changed_paths delta)
        0
        (Bulletin_board.changed_count delta),
      Bulletin_board.changed_count delta )
  in
  let sparse_kernel = Rate_kernel.build inst policy ~board in
  let sflip = ref false in
  let tests =
    [
      Test.make ~name:"reference"
        (Staged.stage (fun () ->
             ignore (Rates.flow_derivative inst policy ~board flow)));
      Test.make ~name:"kernel"
        (Staged.stage (fun () ->
             Rate_kernel.flow_derivative_into kernel flow ~dst));
      Test.make ~name:"kernel-build"
        (Staged.stage (fun () ->
             ignore (Rate_kernel.build inst policy ~board)));
      Test.make ~name:"kernel-update"
        (Staged.stage (fun () ->
             flip := not !flip;
             ignore
               (Rate_kernel.update upd_kernel
                  ~board:(if !flip then board2 else board))));
      Test.make ~name:"board-post"
        (Staged.stage (fun () ->
             ignore (Bulletin_board.post inst ~time:0. flow)));
      (let prev = ref board in
       let rflip = ref false in
       Test.make ~name:"board-repost"
         (Staged.stage (fun () ->
              rflip := not !rflip;
              prev :=
                Bulletin_board.repost ~delta inst ~prev:!prev ~time:0.
                  (if !rflip then flow3 else flow))));
      Test.make ~name:"kernel-update-sparse"
        (Staged.stage (fun () ->
             sflip := not !sflip;
             ignore
               (Rate_kernel.update ~changed sparse_kernel
                  ~board:(if !sflip then board3 else board))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let raw =
    Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ]
      (Test.make_grouped ~name:"rates" ~fmt:"%s %s" tests)
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let get name =
    match ols_estimate results ("rates " ^ name) with
    | Some ns -> ns
    | None -> nan
  in
  let ref_ns = get "reference" in
  let kern_ns = get "kernel" in
  let build_ns = get "kernel-build" in
  let update_ns = get "kernel-update" in
  let post_ns = get "board-post" in
  let repost_ns = get "board-repost" in
  let upd_sparse_ns = get "kernel-update-sparse" in
  (* Fresh information re-posts (and recompiles) every integrator step,
     so a fresh-mode step costs one board snapshot, one kernel
     recompile and one evaluation.  The steady-state step is the
     sparse-delta pipeline (repost + sub-row update); the rebuild
     baseline is the full post + from-scratch build it replaced. *)
  let fresh_sps = 1e9 /. (repost_ns +. upd_sparse_ns +. kern_ns) in
  let rebuild_sps = 1e9 /. (build_ns +. kern_ns) in
  let fresh_speedup =
    (post_ns +. build_ns +. kern_ns)
    /. (repost_ns +. upd_sparse_ns +. kern_ns)
  in
  let repost_speedup = post_ns /. repost_ns in
  let words = euler_words_per_step inst kernel in
  let paths = Instance.path_count inst in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Rate kernel vs reference (%d paths, 2 commodities)" paths)
      ~columns:[ "path"; "ns/op" ]
  in
  Table.add_row table [ "reference flow_derivative"; Printf.sprintf "%.1f" ref_ns ];
  Table.add_row table [ "kernel flow_derivative"; Printf.sprintf "%.1f" kern_ns ];
  Table.add_row table [ "kernel build (per board post)"; Printf.sprintf "%.1f" build_ns ];
  Table.add_row table
    [ "kernel update (incremental)"; Printf.sprintf "%.1f" update_ns ];
  Table.add_row table
    [ "kernel update (sparse delta)"; Printf.sprintf "%.1f" upd_sparse_ns ];
  Table.add_row table [ "board post (full)"; Printf.sprintf "%.1f" post_ns ];
  Table.add_row table
    [ "board repost (sparse delta)"; Printf.sprintf "%.1f" repost_ns ];
  Table.add_row table
    [ "repost speedup"; Printf.sprintf "%.1fx" repost_speedup ];
  Table.add_row table [ "speedup"; Printf.sprintf "%.1fx" (ref_ns /. kern_ns) ];
  Table.add_row table
    [
      "fresh-mode steps/s (repost+update+eval)"; Printf.sprintf "%.0f" fresh_sps;
    ];
  Table.add_row table
    [ "fresh-mode amortized speedup"; Printf.sprintf "%.1fx" fresh_speedup ];
  Table.add_row table
    [ "euler step minor words"; Printf.sprintf "%.2f" words ];
  Table.print table;
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
     %s\
    \  \"benchmark\": \"flow_derivative_rates\",\n\
    \  \"cores_available\": %d,\n\
    \  \"instance\": { \"paths\": %d, \"commodities\": %d },\n\
    \  \"ns_per_op\": {\n\
    \    \"reference\": %.2f,\n\
    \    \"kernel\": %.2f,\n\
    \    \"kernel_build\": %.2f,\n\
    \    \"kernel_update\": %.2f,\n\
    \    \"kernel_update_sparse\": %.2f,\n\
    \    \"board_post\": %.2f,\n\
    \    \"board_repost\": %.2f\n\
    \  },\n\
    \  \"repost_ns_per_op\": %.2f,\n\
    \  \"repost_speedup\": %.2f,\n\
    \  \"speedup_kernel_vs_reference\": %.2f,\n\
    \  \"fresh_mode\": { \"steps_per_sec\": %.0f, \
     \"rebuild_steps_per_sec\": %.0f, \"amortized_speedup\": %.2f },\n\
    \  \"euler_minor_words_per_step\": %.2f\n\
     }\n"
    (meta_block ())
    (Domain.recommended_domain_count ())
    paths
    (Instance.commodity_count inst)
    ref_ns kern_ns build_ns update_ns upd_sparse_ns post_ns repost_ns
    repost_ns repost_speedup (ref_ns /. kern_ns) fresh_sps
    rebuild_sps fresh_speedup words;
  close_out oc;
  Printf.printf "(perf trajectory written to %s)\n%!" json_path

let micro () =
  let open Bechamel in
  let open Staleroute_wardrop in
  let open Staleroute_dynamics in
  let inst = Common.parallel 16 in
  let braess = Common.braess () in
  let flow = Flow.uniform inst in
  let board = Bulletin_board.post inst ~time:0. flow in
  let policy = Policy.replicator inst in
  let grid = Staleroute_graph.Gen.grid ~width:6 ~height:6 in
  let weights =
    Array.init
      (Staleroute_graph.Digraph.edge_count grid.Staleroute_graph.Gen.graph)
      (fun e -> 1. +. float_of_int (e mod 7))
  in
  let kernel = Rate_kernel.build inst policy ~board in
  let dst = Staleroute_util.Vec.create (Instance.path_count inst) 0. in
  let pool = Staleroute_util.Vec.Pool.create ~dim:(Instance.path_count inst) in
  let tests =
    [
      Test.make ~name:"flow-derivative reference (16 paths)"
        (Staged.stage (fun () ->
             ignore (Rates.flow_derivative inst policy ~board flow)));
      Test.make ~name:"flow-derivative kernel (16 paths)"
        (Staged.stage (fun () ->
             Rate_kernel.flow_derivative_into kernel flow ~dst));
      Test.make ~name:"rate-kernel build (16 paths)"
        (Staged.stage (fun () ->
             ignore (Rate_kernel.build inst policy ~board)));
      (let flow2 = perturb_shares inst flow in
       let board2 = Bulletin_board.post inst ~time:1e-3 flow2 in
       let uk = Rate_kernel.build inst policy ~board in
       let flip = ref false in
       Test.make ~name:"rate-kernel update (16 paths)"
         (Staged.stage (fun () ->
              flip := not !flip;
              ignore
                (Rate_kernel.update uk
                   ~board:(if !flip then board2 else board)))));
      Test.make ~name:"board post (16 paths)"
        (Staged.stage (fun () ->
             ignore (Bulletin_board.post inst ~time:0. flow)));
      (let g = Staleroute_util.Vec.copy flow in
       Staleroute_util.Vec.set g 0 (Staleroute_util.Vec.get g 0 -. 0.004);
       Staleroute_util.Vec.set g 1 (Staleroute_util.Vec.get g 1 +. 0.004);
       let delta = Bulletin_board.delta () in
       let prev = ref board in
       let flip = ref false in
       Test.make ~name:"board repost sparse (16 paths)"
         (Staged.stage (fun () ->
              flip := not !flip;
              prev :=
                Bulletin_board.repost ~delta inst ~prev:!prev ~time:0.
                  (if !flip then g else flow))));
      (let x = Staleroute_util.Vec.create 256 1.5 in
       let y = Staleroute_util.Vec.create 256 0.5 in
       Test.make ~name:"vec axpy (256)"
         (Staged.stage (fun () ->
              Staleroute_util.Vec.axpy ~alpha:1e-9 ~x ~y)));
      (let x = Staleroute_util.Vec.create 256 1.5 in
       let y = Staleroute_util.Vec.create 256 0.5 in
       Test.make ~name:"vec dot (256)"
         (Staged.stage (fun () -> ignore (Staleroute_util.Vec.dot x y))));
      Test.make ~name:"potential (16 paths)"
        (Staged.stage (fun () -> ignore (Potential.phi inst flow)));
      Test.make ~name:"rk4 phase step reference (16 paths)"
        (Staged.stage (fun () ->
             let deriv g = Rates.flow_derivative inst policy ~board g in
             ignore
               (Integrator.integrate_phase Integrator.Rk4 inst ~deriv
                  ~f0:flow ~tau:0.1 ~steps:1)));
      Test.make ~name:"rk4 phase step kernel in-place (16 paths)"
        (Staged.stage (fun () ->
             let f = Staleroute_util.Vec.copy flow in
             Integrator.integrate_phase_into Integrator.Rk4 inst ~pool
               ~deriv_into:(Rate_kernel.flow_derivative_into kernel)
               ~f ~tau:0.1 ~steps:1));
      Test.make ~name:"dijkstra (6x6 grid)"
        (Staged.stage (fun () ->
             ignore
               (Staleroute_graph.Dijkstra.run grid.Staleroute_graph.Gen.graph
                  ~weights ~src:0)));
      Test.make ~name:"path enumeration (braess)"
        (Staged.stage (fun () ->
             ignore
               (Staleroute_graph.Path_enum.all_simple_paths
                  (Instance.graph braess) ~src:0 ~dst:3)));
      Test.make ~name:"frank-wolfe iteration (braess)"
        (Staged.stage (fun () ->
             ignore (Frank_wolfe.equilibrium ~max_iter:1 braess)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let raw =
    Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ]
      (Test.make_grouped ~name:"staleroute" ~fmt:"%s %s" tests)
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"Microbenchmarks (monotonic clock)"
      ~columns:[ "benchmark"; "ns/run" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Printf.sprintf "%.1f" x
        | _ -> "n/a"
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) -> Table.add_row table [ name; ns ])
    (List.sort compare !rows);
  Table.print table

(* --- Instrumented smoke runs: probe/metric ground truth --- *)

(* Tiny instrumented runs asserting the telemetry contract: event
   counts match the board-posting cadence (once per phase under Stale,
   once per integrator step under Fresh), the per-phase potentials in
   the event stream equal the driver's records, same-config traces are
   byte-identical, and the disabled-probe Euler hot path still
   allocates nothing.  Writes BENCH_trace.json; exits non-zero on any
   failure. *)
let trace_smoke ~json_path () =
  let open Staleroute_wardrop in
  let open Staleroute_dynamics in
  let failures = ref 0 in
  let check name ok =
    Printf.printf "  %-48s %s\n%!" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  (* Stale information on the E1 oscillation workload. *)
  let inst = Common.two_link ~beta:4. in
  let policy = Policy.uniform_linear inst in
  let phases = 6 and steps = 8 in
  let config =
    {
      Driver.policy;
      staleness = Driver.Stale 0.1;
      phases;
      steps_per_phase = steps;
      scheme = Integrator.Rk4;
    }
  in
  let init = Common.biased_start inst in
  let capture () =
    let buf = Probe.Memory.create () in
    let metrics = Metrics.create () in
    let result =
      Driver.run ~probe:(Probe.Memory.probe buf) ~metrics inst config ~init
    in
    (buf, metrics, result)
  in
  let buf, metrics, result = capture () in
  let count buf p = Probe.Memory.count buf p in
  let stale_reposts =
    count buf (function Probe.Board_repost _ -> true | _ -> false)
  in
  let stale_rebuilds =
    count buf (function Probe.Kernel_rebuild _ -> true | _ -> false)
  in
  check "stale: board reposts = phases" (stale_reposts = phases);
  check "stale: kernel rebuilds = phases" (stale_rebuilds = phases);
  check "stale: rebuild counter agrees with events"
    (Metrics.count (Metrics.counter metrics "kernel_rebuilds")
    = stale_rebuilds);
  let phis =
    Array.of_list
      (List.filter_map
         (function
           | Probe.Phase_start { potential; _ } -> Some potential | _ -> None)
         (Array.to_list (Probe.Memory.events buf)))
  in
  let phi_agree = ref (Array.length phis = Array.length result.Driver.records) in
  Array.iteri
    (fun i (r : Driver.phase_record) ->
      if
        !phi_agree
        && Float.abs (phis.(i) -. r.Driver.start_potential) > 1e-12
      then phi_agree := false)
    result.Driver.records;
  check "stale: phase_start phi = driver records (1e-12)" !phi_agree;
  let buf2, _, _ = capture () in
  let s1 = Trace_export.events_to_string (Probe.Memory.events buf) in
  let s2 = Trace_export.events_to_string (Probe.Memory.events buf2) in
  let identical = String.equal s1 s2 in
  check "stale: same-config trace byte-identical" identical;
  (* Fresh information re-posts every integrator step. *)
  let binst = Common.braess () in
  let fphases = 3 and fsteps = 5 in
  let fconfig =
    {
      Driver.policy = Policy.uniform_linear binst;
      staleness = Driver.Fresh;
      phases = fphases;
      steps_per_phase = fsteps;
      scheme = Integrator.Euler;
    }
  in
  let fbuf = Probe.Memory.create () in
  ignore
    (Driver.run ~probe:(Probe.Memory.probe fbuf) binst fconfig
       ~init:(Flow.uniform binst));
  let fresh_rebuilds =
    count fbuf (function Probe.Kernel_rebuild _ -> true | _ -> false)
  in
  check "fresh: kernel rebuilds = phases * steps"
    (fresh_rebuilds = fphases * fsteps);
  (* The disabled-probe hot path must stay allocation-free (the
     measurement is only meaningful under the native compiler). *)
  let words =
    let board = Bulletin_board.post inst ~time:0. (Flow.uniform inst) in
    euler_words_per_step inst (Rate_kernel.build inst policy ~board)
  in
  let native =
    match Sys.backend_type with Sys.Native -> true | _ -> false
  in
  check "probes off: euler step minor words = 0"
    ((not native) || words = 0.);
  let pass = !failures = 0 in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
     %s\
    \  \"benchmark\": \"trace_smoke\",\n\
    \  \"cores_available\": %d,\n\
    \  \"stale\": { \"phases\": %d, \"board_reposts\": %d, \
     \"kernel_rebuilds\": %d },\n\
    \  \"fresh\": { \"phases\": %d, \"steps_per_phase\": %d, \
     \"kernel_rebuilds\": %d },\n\
    \  \"trace_byte_identical\": %b,\n\
    \  \"euler_minor_words_per_step_probes_off\": %.2f,\n\
    \  \"pass\": %b\n\
     }\n"
    (meta_block ())
    (Domain.recommended_domain_count ())
    phases stale_reposts stale_rebuilds fphases fsteps fresh_rebuilds
    identical words pass;
  close_out oc;
  Printf.printf "(trace smoke written to %s)\n%!" json_path;
  if not pass then exit 1

(* --- Fault smoke: fault plans, guardrails, checkpoint/resume --- *)

(* Ground truth for the robustness layer: fault draws are pure in
   (seed, index); faulted traces are seed-deterministic; a NaN-producing
   policy trips the guard (raise under fail-fast, finite flow under
   repair); a run resumed from a mid-run snapshot replays the identical
   trace; dropped re-posts inflate the effective update period by
   about 1/(1-p); and topology outages (DESIGN.md §14) keep every
   byte-identity contract — same-seed outage traces identical, resume
   across an outage boundary identical, a zero-rate plan bitwise inert
   — while a full partition trips the guard (raise under fail-fast,
   finite flow under ignore).  Writes BENCH_faults.json; exits
   non-zero on any failure. *)
let fault_smoke ~json_path () =
  let open Staleroute_dynamics in
  let failures = ref 0 in
  let check name ok =
    Printf.printf "  %-48s %s\n%!" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  (* 1. Fault plans are pure functions of (seed, index). *)
  let spec =
    Faults.make ~drop:0.25 ~delay:0.15 ~partial:0.15 ~noise:0.15 ~seed:42 ()
  in
  let draws plan = Array.init 1000 (fun i -> Faults.fault_at plan ~index:i) in
  let d1 = draws (Faults.plan spec) and d2 = draws (Faults.plan spec) in
  check "fault_at: pure in (seed, index)" (d1 = d2);
  let kind_count p =
    Array.to_list d1 |> List.filter (fun f -> Option.is_some f && p f)
    |> List.length
  in
  let drops = kind_count (fun f -> f = Some Faults.Drop) in
  let delays =
    kind_count (function Some (Faults.Delay _) -> true | _ -> false)
  in
  let partials =
    kind_count (function Some (Faults.Partial _) -> true | _ -> false)
  in
  let noises =
    kind_count (function Some (Faults.Noise _) -> true | _ -> false)
  in
  check "fault_at: every kind fires on 1000 draws"
    (drops > 0 && delays > 0 && partials > 0 && noises > 0);
  check "fault_at: null plan never fires"
    (Array.for_all Option.is_none (draws (Faults.plan Faults.none)));
  (* 2. Faulted same-seed runs produce byte-identical traces. *)
  let inst = Common.two_link ~beta:4. in
  let policy = Policy.uniform_linear inst in
  let config =
    {
      Driver.policy;
      staleness = Driver.Stale 0.25;
      phases = 12;
      steps_per_phase = 8;
      scheme = Integrator.Rk4;
    }
  in
  let init = Common.biased_start inst in
  let faulted ?from ?checkpoint_every ?on_checkpoint () =
    let buf = Probe.Memory.create () in
    let result =
      Driver.run
        ~probe:(Probe.Memory.probe buf)
        ~faults:(Faults.plan spec) ?from ?checkpoint_every ?on_checkpoint
        inst config ~init
    in
    (buf, result)
  in
  let buf_a, result_a = faulted () in
  let buf_b, _ = faulted () in
  let to_string buf = Trace_export.events_to_string (Probe.Memory.events buf) in
  check "faulted trace: same seed byte-identical"
    (String.equal (to_string buf_a) (to_string buf_b));
  let injected =
    Probe.Memory.count buf_a (function
      | Probe.Fault_injected _ -> true
      | _ -> false)
  in
  check "faulted trace: faults actually injected" (injected > 0);
  (* 3. Checkpoint/resume replays the identical trace. *)
  let saved = ref None in
  let _, _ =
    faulted
      ~checkpoint_every:5
      ~on_checkpoint:(fun snap ->
        if !saved = None then
          saved := Some (snap, Array.copy (Probe.Memory.events buf_a)))
      ()
  in
  let resume_identical, resume_flow_identical =
    match !saved with
    | None -> (false, false)
    | Some (snap, _) ->
        (* The prefix comes from the uninterrupted run: events of the
           first [next_phase] phases are exactly those emitted before
           the checkpoint fired (same seed, same plan). *)
        let buf_c, result_c = faulted ~from:snap () in
        let full = Probe.Memory.events buf_a in
        let tail = Probe.Memory.events buf_c in
        let prefix_len = Array.length full - Array.length tail in
        let stitched =
          Array.append (Array.sub full 0 prefix_len) tail
        in
        ( prefix_len >= 0
          && String.equal (to_string buf_a)
               (Trace_export.events_to_string stitched),
          Array.for_all2
            (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
            (Staleroute_util.Vec.to_array result_a.Driver.final_flow)
            (Staleroute_util.Vec.to_array result_c.Driver.final_flow) )
  in
  check "resume: stitched trace byte-identical" resume_identical;
  check "resume: final flow bit-identical" resume_flow_identical;
  (* 4. Numeric guardrails against a NaN-producing custom policy. *)
  let nan_policy =
    Policy.make ~sampling:Sampling.Uniform
      ~migration:
        (Migration.Custom
           {
             name = "nan-after-start";
             prob = (fun ~ell_p:_ ~ell_q:_ -> Float.nan);
             alpha = None;
           })
  in
  let nan_config = { config with Driver.policy = nan_policy; phases = 3 } in
  let fail_fast_raised =
    match Driver.run ~guard:Guard.fail_fast inst nan_config ~init with
    | exception Guard.Unhealthy d -> d.Guard.index = 0
    | _ -> false
  in
  check "guard fail-fast: raises Unhealthy at first boundary"
    fail_fast_raised;
  let repair_metrics = Metrics.create () in
  let repaired =
    Driver.run ~metrics:repair_metrics ~guard:Guard.repair inst nan_config
      ~init
  in
  let repairs =
    Metrics.count (Metrics.counter repair_metrics "guard_repairs")
  in
  let final_finite =
    Staleroute_util.Vec.for_all Float.is_finite
      repaired.Driver.final_flow
  in
  check "guard repair: run completes with finite flow"
    (final_finite && repairs > 0);
  (* 5. Dropped re-posts inflate the effective period by ~1/(1-p). *)
  let drop_metrics = Metrics.create () in
  let drop_phases = 400 in
  ignore
    (Driver.run ~metrics:drop_metrics
       ~faults:(Faults.plan (Faults.make ~drop:0.5 ~seed:42 ()))
       inst
       { config with Driver.phases = drop_phases }
       ~init);
  let posts =
    Metrics.count (Metrics.counter drop_metrics "board_reposts")
  in
  let rebuilds =
    Metrics.count (Metrics.counter drop_metrics "kernel_rebuilds")
  in
  let eff = float_of_int drop_phases /. float_of_int posts in
  check "drop 0.5: effective period in [1.6, 2.4] x T"
    (eff >= 1.6 && eff <= 2.4);
  check "drop: kernel rebuilt only on successful posts" (rebuilds = posts);
  (* 6. Topology outages: byte-identity under edge failures, resume
     across an outage boundary, zero-rate inertness, partition guard. *)
  let inst4 = Common.parallel 4 in
  let config4 =
    {
      Driver.policy = Policy.uniform_linear inst4;
      staleness = Driver.Stale 0.25;
      phases = 20;
      steps_per_phase = 8;
      scheme = Integrator.Rk4;
    }
  in
  let init4 = Common.biased_start inst4 in
  let outage_run ?faults ?from ?checkpoint_every ?on_checkpoint () =
    let buf = Probe.Memory.create () in
    let result =
      Driver.run
        ~probe:(Probe.Memory.probe buf)
        ?faults ~guard:Guard.ignore_ ?from ?checkpoint_every ?on_checkpoint
        inst4 config4 ~init:init4
    in
    (buf, result)
  in
  let outage_faults () =
    Faults.plan
      (Faults.make ~drop:0.25 ~outage:0.2 ~outage_mttr:3. ~outage_seed:7
         ~seed:42 ())
  in
  let buf_o1, result_o1 = outage_run ~faults:(outage_faults ()) () in
  let buf_o2, _ = outage_run ~faults:(outage_faults ()) () in
  check "outage trace: same seed byte-identical"
    (String.equal (to_string buf_o1) (to_string buf_o2));
  let edge_downs =
    Probe.Memory.count buf_o1 (function
      | Probe.Edge_down _ -> true
      | _ -> false)
  in
  let edge_ups =
    Probe.Memory.count buf_o1 (function
      | Probe.Edge_up _ -> true
      | _ -> false)
  in
  check "outage trace: edges fail and recover" (edge_downs > 0 && edge_ups > 0);
  let saved_o = ref None in
  let _, _ =
    outage_run ~faults:(outage_faults ()) ~checkpoint_every:7
      ~on_checkpoint:(fun snap -> if !saved_o = None then saved_o := Some snap)
      ()
  in
  let resume_outage_identical, resume_outage_flow_identical =
    match !saved_o with
    | None -> (false, false)
    | Some snap ->
        let buf_r, result_r = outage_run ~faults:(outage_faults ()) ~from:snap () in
        let full = Probe.Memory.events buf_o1 in
        let tail = Probe.Memory.events buf_r in
        let prefix_len = Array.length full - Array.length tail in
        let has_edge_event =
          Array.exists (function
            | Probe.Edge_down _ | Probe.Edge_up _ -> true
            | _ -> false)
        in
        let stitched = Array.append (Array.sub full 0 prefix_len) tail in
        ( prefix_len >= 0
          && has_edge_event (Array.sub full 0 prefix_len)
          && has_edge_event tail
          && String.equal (to_string buf_o1)
               (Trace_export.events_to_string stitched),
          Array.for_all2
            (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
            (Staleroute_util.Vec.to_array result_o1.Driver.final_flow)
            (Staleroute_util.Vec.to_array result_r.Driver.final_flow) )
  in
  check "outage resume: outages on both sides of the snapshot, \
         stitched trace byte-identical"
    resume_outage_identical;
  check "outage resume: final flow bit-identical" resume_outage_flow_identical;
  let buf_clean, result_clean = outage_run () in
  let buf_zero, result_zero =
    outage_run
      ~faults:(Faults.plan (Faults.make ~outage:0. ~outage_mttr:7. ~outage_seed:99 ()))
      ()
  in
  let zero_rate_inert =
    String.equal (to_string buf_clean) (to_string buf_zero)
    && Array.for_all2
         (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
         (Staleroute_util.Vec.to_array result_clean.Driver.final_flow)
         (Staleroute_util.Vec.to_array result_zero.Driver.final_flow)
  in
  check "outage zero-rate: bitwise inert vs no plan at all" zero_rate_inert;
  let partition_faults () =
    Faults.plan (Faults.make ~outage:1. ~outage_mttr:4. ~outage_seed:7 ())
  in
  let partition_config = { config with Driver.phases = 6 } in
  let partition_fail_fast =
    match
      Driver.run ~guard:Guard.fail_fast ~faults:(partition_faults ()) inst
        partition_config ~init
    with
    | exception Guard.Unhealthy d ->
        d.Guard.cause = Guard.Network_partitioned && d.Guard.index = 0
    | _ -> false
  in
  check "partition: fail-fast raises Network_partitioned at index 0"
    partition_fail_fast;
  let partition_ignore_survives =
    match
      Driver.run ~guard:Guard.ignore_ ~faults:(partition_faults ()) inst
        partition_config ~init
    with
    | result ->
        Staleroute_util.Vec.for_all Float.is_finite result.Driver.final_flow
    | exception _ -> false
  in
  check "partition: ignore completes with finite flow"
    partition_ignore_survives;
  let pass = !failures = 0 in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
     %s\
    \  \"benchmark\": \"fault_smoke\",\n\
    \  \"cores_available\": %d,\n\
    \  \"plan_draws\": { \"drop\": %d, \"delay\": %d, \"partial\": %d, \
     \"noise\": %d },\n\
    \  \"faulted_events\": %d,\n\
    \  \"resume_trace_byte_identical\": %b,\n\
    \  \"resume_flow_bit_identical\": %b,\n\
    \  \"guard\": { \"fail_fast_raised\": %b, \"repairs\": %d },\n\
    \  \"drop_half\": { \"phases\": %d, \"posts\": %d, \
     \"effective_period\": %.3f },\n\
    \  \"outage\": { \"edge_downs\": %d, \"edge_ups\": %d, \
     \"trace_byte_identical\": %b, \"resume_across_outage_identical\": %b, \
     \"resume_flow_bit_identical\": %b, \"zero_rate_inert\": %b, \
     \"partition_fail_fast_raised\": %b, \"partition_ignore_survives\": %b \
     },\n\
    \  \"pass\": %b\n\
     }\n"
    (meta_block ())
    (Domain.recommended_domain_count ())
    drops delays partials noises injected resume_identical
    resume_flow_identical fail_fast_raised repairs drop_phases posts eff
    edge_downs edge_ups
    (String.equal (to_string buf_o1) (to_string buf_o2))
    resume_outage_identical resume_outage_flow_identical zero_rate_inert
    partition_fail_fast partition_ignore_survives pass;
  close_out oc;
  Printf.printf "(fault smoke written to %s)\n%!" json_path;
  if not pass then exit 1

(* --- Colgen smoke: column-generation ground truth --- *)

(* Ground truth for the column-generation core (DESIGN.md §11): on a
   small enumerable instance the lazily-grown run reaches the same
   equilibrium as the enumerating core (judged by unsatisfied volume
   and the Beckmann potential); a pool seeded with the Full path set
   produces a byte-identical trace and bit-identical flow to a plain
   run (growth never fires); a 10^4+-edge layered DAG runs a full
   stale-information trajectory through growth with an active set a
   vanishing fraction of the enumerable one; and checkpoint/resume
   replays mid-run growth byte-for-byte while a tampered grown-path
   record is refused.  Writes BENCH_colgen.json; exits non-zero on any
   failure. *)
let colgen_smoke ~json_path () =
  let open Staleroute_wardrop in
  let open Staleroute_dynamics in
  let module Gen = Staleroute_graph.Gen in
  let module Digraph = Staleroute_graph.Digraph in
  let module Path_enum = Staleroute_graph.Path_enum in
  let module Latency = Staleroute_latency.Latency in
  let module Rng = Staleroute_util.Rng in
  let module Vec = Staleroute_util.Vec in
  let failures = ref 0 in
  let check name ok =
    Printf.printf "  %-56s %s\n%!" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  (* The E18 recipe: seeded layered DAG, affine latencies, one unit
     commodity source->sink. *)
  let workload ~seed ~layers ~width ~edge_prob ~skip_prob =
    let rng = Rng.create ~seed () in
    let st = Gen.layered_skips ~skip_prob ~rng ~layers ~width ~edge_prob in
    let m = Digraph.edge_count st.Gen.graph in
    let latencies =
      Array.init m (fun _ ->
          Latency.affine
            ~slope:(0.25 +. Rng.float rng 1.5)
            ~intercept:(Rng.float rng 0.3))
    in
    (st, latencies)
  in
  (* Uniform sampling (proportional sampling cannot discover zero-flow
     grown columns) with ell_max bounded over the whole implicit path
     set, and the safe update period computed from it. *)
  let colgen_policy ~layers latencies =
    let worst =
      Array.fold_left
        (fun acc l -> Float.max acc (Latency.eval l 1.))
        0. latencies
    in
    Policy.make ~sampling:Sampling.Uniform
      ~migration:
        (Migration.Linear { ell_max = float_of_int (layers + 1) *. worst })
  in
  let period ~layers policy inst =
    let d = float_of_int (layers + 1) in
    let beta = Instance.beta inst in
    let alpha = Option.get (Policy.alpha policy) in
    if beta = 0. || alpha = 0. then 1.
    else Float.min 1. (1. /. (4. *. d *. alpha *. beta))
  in
  let config ~policy ~t ~phases ~steps =
    {
      Driver.policy;
      staleness = Driver.Stale t;
      phases;
      steps_per_phase = steps;
      scheme = Integrator.Rk4;
    }
  in
  (* 1. Small-instance differential: colgen equilibrium = enumerated
     equilibrium, judged by unsatisfied volume and the potential. *)
  let st, latencies =
    workload ~seed:5 ~layers:3 ~width:3 ~edge_prob:0.7 ~skip_prob:0.
  in
  let commodities =
    [ Commodity.single ~src:st.Gen.src ~dst:st.Gen.dst ]
  in
  let policy = colgen_policy ~layers:3 latencies in
  let full_pool =
    Path_pool.create ~seed:Path_pool.Full ~graph:st.Gen.graph ~latencies
      ~commodities ()
  in
  let full_inst = Path_pool.instance full_pool in
  let t = period ~layers:3 policy full_inst in
  let cfg = config ~policy ~t ~phases:400 ~steps:12 in
  let grow_pool =
    Path_pool.create ~graph:st.Gen.graph ~latencies ~commodities ()
  in
  let seed_inst = Path_pool.instance grow_pool in
  let colgen_result =
    Driver.run ~colgen:grow_pool seed_inst cfg
      ~init:(Flow.concentrated seed_inst ~on:(fun _ -> 0))
  in
  let enum_result =
    Driver.run full_inst cfg
      ~init:(Flow.concentrated full_inst ~on:(fun _ -> 0))
  in
  let delta = 0.25 in
  let colgen_unsat =
    Path_pool.unsatisfied_volume grow_pool
      colgen_result.Driver.final_instance colgen_result.Driver.final_flow
      ~delta
  in
  let enum_unsat =
    Equilibrium.unsatisfied_volume full_inst enum_result.Driver.final_flow
      ~delta
  in
  let phi_colgen =
    Potential.phi colgen_result.Driver.final_instance
      colgen_result.Driver.final_flow
  in
  let phi_enum = Potential.phi full_inst enum_result.Driver.final_flow in
  let phi_rel_diff =
    Float.abs (phi_colgen -. phi_enum) /. Float.max 1e-9 (Float.abs phi_enum)
  in
  let active_small =
    Instance.path_count colgen_result.Driver.final_instance
  in
  check "differential: colgen run delta-satisfied" (colgen_unsat <= 1e-3);
  check "differential: enumerated run delta-satisfied" (enum_unsat <= 1e-3);
  check "differential: potentials agree (rel <= 1e-2)"
    (phi_rel_diff <= 1e-2);
  check "differential: active set within enumerated"
    (active_small >= 1 && active_small <= Instance.path_count full_inst);
  (* 2. Full seed: colgen run is byte- and bit-identical to a plain
     run — every column is already active, so growth never fires. *)
  let run_full ?colgen () =
    let buf = Probe.Memory.create () in
    let result =
      Driver.run
        ~probe:(Probe.Memory.probe buf)
        ?colgen full_inst cfg ~init:(Flow.uniform full_inst)
    in
    (buf, result)
  in
  let buf_plain, result_plain = run_full () in
  let buf_colgen, result_colgen = run_full ~colgen:full_pool () in
  let to_string buf =
    Trace_export.events_to_string (Probe.Memory.events buf)
  in
  let growth_events buf =
    Probe.Memory.count buf (function
      | Probe.Path_growth _ -> true
      | _ -> false)
  in
  let full_seed_trace =
    String.equal (to_string buf_plain) (to_string buf_colgen)
  in
  let full_seed_flow =
    Array.for_all2
      (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
      (Vec.to_array result_plain.Driver.final_flow)
      (Vec.to_array result_colgen.Driver.final_flow)
  in
  check "full seed: trace byte-identical to plain run" full_seed_trace;
  check "full seed: final flow bit-identical" full_seed_flow;
  check "full seed: growth never fires" (growth_events buf_colgen = 0);
  (* 3. A layered DAG the enumerating core cannot represent: >= 10^4
     edges, astronomically many simple paths, and the active set stays
     a vanishing fraction of them while the run converges. *)
  let lst, llat =
    workload ~seed:22 ~layers:66 ~width:16 ~edge_prob:0.6 ~skip_prob:0.05
  in
  let lpool =
    Path_pool.create ~graph:lst.Gen.graph ~latencies:llat
      ~commodities:[ Commodity.single ~src:lst.Gen.src ~dst:lst.Gen.dst ]
      ()
  in
  let lpolicy = colgen_policy ~layers:66 llat in
  let lseed = Path_pool.instance lpool in
  let lt = period ~layers:66 lpolicy lseed in
  let lphases = 800 in
  let lmetrics = Metrics.create () in
  let lresult =
    Driver.run ~metrics:lmetrics ~colgen:lpool lseed
      (config ~policy:lpolicy ~t:lt ~phases:lphases ~steps:12)
      ~init:(Flow.concentrated lseed ~on:(fun _ -> 0))
  in
  let ledges = Digraph.edge_count lst.Gen.graph in
  let lenumerable =
    match
      Path_enum.count_paths_dag lst.Gen.graph ~src:lst.Gen.src
        ~dst:lst.Gen.dst
    with
    | Some n -> n
    | None -> Float.nan
  in
  let lactive = Instance.path_count lresult.Driver.final_instance in
  let lgrown = Metrics.count (Metrics.counter lmetrics "paths_grown") in
  let lunsat =
    Path_pool.unsatisfied_volume lpool lresult.Driver.final_instance
      lresult.Driver.final_flow ~delta:0.5
  in
  check "large DAG: >= 10^4 edges" (ledges >= 10_000);
  check "large DAG: enumerable set beyond 10^30" (lenumerable >= 1e30);
  check "large DAG: growth fired (active = 1 + grown)"
    (lgrown > 0 && lactive = 1 + lgrown);
  check "large DAG: active set vanishing fraction"
    (float_of_int lactive < 1e-3 *. lenumerable && lactive < 10_000);
  check "large DAG: run delta-satisfied (delta = 0.5)" (lunsat <= 1e-3);
  check "large DAG: final flow finite"
    (Vec.for_all Float.is_finite lresult.Driver.final_flow);
  (* 4. Checkpoint/resume with mid-run growth: the stitched trace is
     byte-identical (including Path_growth events), the final flow
     bit-identical, and a hand-edited grown-path record is refused. *)
  let rst, rlat =
    workload ~seed:19 ~layers:6 ~width:6 ~edge_prob:0.5 ~skip_prob:0.15
  in
  let rcommodities =
    [ Commodity.single ~src:rst.Gen.src ~dst:rst.Gen.dst ]
  in
  let rpolicy = colgen_policy ~layers:6 rlat in
  let make_rpool () =
    Path_pool.create ~graph:rst.Gen.graph ~latencies:rlat
      ~commodities:rcommodities ()
  in
  let rpool = make_rpool () in
  let rseed = Path_pool.instance rpool in
  let rt = period ~layers:6 rpolicy rseed in
  let rcfg = config ~policy:rpolicy ~t:rt ~phases:40 ~steps:8 in
  let rinit = Flow.concentrated rseed ~on:(fun _ -> 0) in
  let saved = ref None in
  let run_r ?from ?checkpoint_every ?on_checkpoint pool =
    let buf = Probe.Memory.create () in
    let result =
      Driver.run
        ~probe:(Probe.Memory.probe buf)
        ~colgen:pool ?from ?checkpoint_every ?on_checkpoint
        (Path_pool.instance pool) rcfg ~init:rinit
    in
    (buf, result)
  in
  let buf_r, result_r =
    run_r
      ~checkpoint_every:10
      ~on_checkpoint:(fun snap -> if !saved = None then saved := Some snap)
      rpool
  in
  check "resume: mid-run growth happened" (growth_events buf_r > 0);
  let resume_trace, resume_flow, snap_grown, tamper_refused =
    match !saved with
    | None -> (false, false, false, false)
    | Some snap ->
        let pool' = make_rpool () in
        let buf_c, result_c = run_r ~from:snap pool' in
        let full = Probe.Memory.events buf_r in
        let tail = Probe.Memory.events buf_c in
        let prefix_len = Array.length full - Array.length tail in
        let stitched = Array.append (Array.sub full 0 prefix_len) tail in
        let trace_ok =
          prefix_len >= 0
          && String.equal (to_string buf_r)
               (Trace_export.events_to_string stitched)
        in
        let flow_ok =
          Array.for_all2
            (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
            (Vec.to_array result_r.Driver.final_flow)
            (Vec.to_array result_c.Driver.final_flow)
        in
        let m = Digraph.edge_count rst.Gen.graph in
        let tampered =
          {
            snap with
            Driver.grown_paths =
              List.map
                (fun (c, edges) ->
                  (c, Array.map (fun e -> (e + 1) mod m) edges))
                snap.Driver.grown_paths;
          }
        in
        let refused =
          snap.Driver.grown_paths <> []
          &&
          match run_r ~from:tampered (make_rpool ()) with
          | exception Invalid_argument _ -> true
          | _ -> false
        in
        (trace_ok, flow_ok, snap.Driver.grown_paths <> [], refused)
  in
  check "resume: snapshot records grown paths" snap_grown;
  check "resume: stitched trace byte-identical" resume_trace;
  check "resume: final flow bit-identical" resume_flow;
  check "resume: tampered grown paths refused" tamper_refused;
  let pass = !failures = 0 in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
     %s\
    \  \"benchmark\": \"colgen_smoke\",\n\
    \  \"cores_available\": %d,\n\
    \  \"differential\": { \"colgen_unsat\": %s, \"enum_unsat\": %s, \
     \"phi_rel_diff\": %s, \"active\": %d, \"enumerated\": %d },\n\
    \  \"full_seed\": { \"trace_byte_identical\": %b, \
     \"flow_bit_identical\": %b },\n\
    \  \"large_dag\": { \"edges\": %d, \"enumerable\": %.3e, \
     \"active\": %d, \"grown\": %d, \"unsat\": %s, \"phases\": %d },\n\
    \  \"resume\": { \"growth_events\": %d, \"trace_byte_identical\": \
     %b, \"flow_bit_identical\": %b, \"tamper_refused\": %b },\n\
    \  \"pass\": %b\n\
     }\n"
    (meta_block ())
    (Domain.recommended_domain_count ())
    (Staleroute_obs.Json.float_repr colgen_unsat)
    (Staleroute_obs.Json.float_repr enum_unsat)
    (Staleroute_obs.Json.float_repr phi_rel_diff)
    active_small
    (Instance.path_count full_inst)
    full_seed_trace full_seed_flow ledges lenumerable lactive lgrown
    (Staleroute_obs.Json.float_repr lunsat)
    lphases (growth_events buf_r) resume_trace resume_flow tamper_refused
    pass;
  close_out oc;
  Printf.printf "(colgen smoke written to %s)\n%!" json_path;
  if not pass then exit 1

(* --- Parallel smoke: pool determinism ground truth + timings --- *)

let wall_time f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, Unix.gettimeofday () -. t0)

(* Determinism checks for the domain-pool plumbing, each comparing a
   pooled run byte-for-byte against its sequential twin, plus the two
   headline timings (pooled vs sequential E16-quick; sharded vs whole
   kernel build).  With [full], additionally times the full E1-E17
   suite at -j 1 vs -j [jobs].  Writes BENCH_parallel.json; exits
   non-zero on any determinism failure. *)
let parallel_smoke ~jobs ~full ~json_path () =
  let open Staleroute_wardrop in
  let open Staleroute_dynamics in
  let failures = ref 0 in
  let check name ok =
    Printf.printf "  %-56s %s\n%!" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  let width = max 2 jobs in
  (* 1. Sharded kernel build is bit-identical to the whole build.  The
     bench instance sits below the auto-threshold (where sharding is a
     net loss), so the identity check forces the sharded path. *)
  let kinst = multicommodity_parallel ~commodities:8 24 in
  let kpolicy = Policy.replicator kinst in
  let kboard = Bulletin_board.post kinst ~time:0. (Flow.uniform kinst) in
  let whole = Rate_kernel.build kinst kpolicy ~board:kboard in
  let sharded =
    Pool.with_pool ~domains:width (fun pool ->
        Rate_kernel.build ?pool ~shard_min_entries:0 kinst kpolicy
          ~board:kboard)
  in
  let n = Instance.path_count kinst in
  let rates_equal = ref true in
  for p = 0 to n - 1 do
    for q = 0 to n - 1 do
      if
        not
          (Float.equal
             (Rate_kernel.rate whole ~from_:p q)
             (Rate_kernel.rate sharded ~from_:p q))
      then rates_equal := false
    done
  done;
  let f = Flow.random kinst (Staleroute_util.Rng.create ~seed:7 ()) in
  let d_whole = Rate_kernel.flow_derivative whole f in
  let d_sharded = Rate_kernel.flow_derivative sharded f in
  check
    (Printf.sprintf "sharded build = whole build (%d commodities)"
       (Instance.commodity_count kinst))
    (!rates_equal && d_whole = d_sharded);
  (* 2. E16-quick: pooled output is byte-identical to sequential, and
     the wall-time comparison is the committed headline number. *)
  let render_e16 pool =
    let out = Buffer.create 4096 in
    buffer_tables out (E16_phase_diagram.tables ?pool ~quick:true ());
    buffer_figures out (E16_phase_diagram.figures ?pool ~quick:true ());
    Buffer.contents out
  in
  let e16_seq, e16_seq_s = wall_time (fun () -> render_e16 None) in
  let e16_pooled, e16_pooled_s =
    wall_time (fun () ->
        Pool.with_pool ~domains:width (fun pool -> render_e16 pool))
  in
  check
    (Printf.sprintf "e16-quick output byte-identical at -j %d" width)
    (String.equal e16_seq e16_pooled);
  (* 3. The multi-experiment fan-out (with metrics, exercising the
     domain-local ambient registries) is byte-identical to -j 1. *)
  let metric_pair pool_width =
    with_metrics := true;
    Fun.protect
      ~finally:(fun () -> with_metrics := false)
      (fun () ->
        let names = [| "e1"; "e16" |] in
        if pool_width <= 1 then
          Array.to_list
            (Array.map
               (fun nm -> run_experiment ~quick:true ~pool:None nm)
               names)
        else
          Pool.with_pool ~domains:pool_width (fun pool ->
              Array.to_list
                (Pool.parallel_map ~pool
                   (fun nm -> run_experiment ~quick:true ~pool:None nm)
                   names)))
  in
  check
    (Printf.sprintf "e1+e16 metrics snapshots byte-identical at -j %d" width)
    (metric_pair 1 = metric_pair width);
  (* 4. A single experiment in metrics mode through the top-level
     dispatch (`bench e16 metrics -j N`): the ambient registry is
     domain-local, so this path must not fan sweep cells out to worker
     domains — run_single_experiment forces ~pool:None under metrics,
     and the snapshot must match -j 1 byte for byte. *)
  let single_metric jobs =
    with_metrics := true;
    Fun.protect
      ~finally:(fun () -> with_metrics := false)
      (fun () -> run_single_experiment ~quick:true ~jobs "e16")
  in
  check
    (Printf.sprintf
       "single e16 metrics snapshot byte-identical at -j %d" width)
    (String.equal (single_metric 1) (single_metric width));
  (* 5. Traced driver runs fanned across the pool produce the same
     JSONL bytes as the sequential loop. *)
  let trace_configs =
    [| (4., 6); (2., 9); (8., 5); (3., 7) |]
    (* (beta, phases) per run *)
  in
  let trace_one (beta, phases) =
    let inst = Common.two_link ~beta in
    let config =
      {
        Driver.policy = Policy.uniform_linear inst;
        staleness = Driver.Stale 0.1;
        phases;
        steps_per_phase = 6;
        scheme = Integrator.Rk4;
      }
    in
    let buf = Probe.Memory.create () in
    ignore
      (Driver.run ~probe:(Probe.Memory.probe buf) inst config
         ~init:(Common.biased_start inst));
    Trace_export.events_to_string (Probe.Memory.events buf)
  in
  let seq_traces = Array.map trace_one trace_configs in
  let pooled_traces =
    Pool.with_pool ~domains:width (fun pool ->
        Pool.parallel_map ~pool trace_one trace_configs)
  in
  check
    (Printf.sprintf "trace JSONL byte-identical at -j 1 vs -j %d" width)
    (seq_traces = pooled_traces);
  (* 6. Kernel build timings: whole (no pool), auto-thresholded pooled
     (this instance is below the threshold, so the pool must be
     ignored), and forced sharding (the old always-shard behaviour,
     recorded so the handoff cost stays visible).  The guard is the
     auto path: handing build a pool must never cost more than building
     whole, beyond timer noise. *)
  let build_reps = 400 in
  let (), whole_build_s =
    wall_time (fun () ->
        for _ = 1 to build_reps do
          ignore (Rate_kernel.build kinst kpolicy ~board:kboard)
        done)
  in
  (* The guard compares like-for-like {e inside} the pool scope: merely
     having idle worker domains alive taxes every minor GC with a
     stop-the-world rendezvous (several-fold on a single core), so a
     no-domains baseline would blame sharding for the domain tax.
     [whole_in_pool] isolates the decision the threshold actually
     makes: given a pool, ignore it below the cutoff. *)
  let whole_in_pool_s, auto_build_s, forced_build_s =
    Pool.with_pool ~domains:width (fun pool ->
        let time f =
          snd
            (wall_time (fun () ->
                 for _ = 1 to build_reps do
                   ignore (f ())
                 done))
        in
        let whole_s =
          time (fun () -> Rate_kernel.build kinst kpolicy ~board:kboard)
        in
        let auto_s =
          time (fun () -> Rate_kernel.build ?pool kinst kpolicy ~board:kboard)
        in
        let forced_s =
          time (fun () ->
              Rate_kernel.build ?pool ~shard_min_entries:0 kinst kpolicy
                ~board:kboard)
        in
        (whole_s, auto_s, forced_s))
  in
  let per_build s = s /. float_of_int build_reps *. 1e9 in
  check
    (Printf.sprintf
       "auto-thresholded pooled build not slower than whole (%.0f vs %.0f \
        ns)"
       (per_build auto_build_s) (per_build whole_in_pool_s))
    (auto_build_s <= 1.5 *. whole_in_pool_s);
  (* 6b. The sweep fan-out gate: per-task work below the threshold
     strips the pool, at-or-above keeps it, and None passes through. *)
  check "fan-out gate strips small work, keeps large"
    (Pool.with_pool ~domains:width (fun pool ->
         Pool.gate ~work:(Pool.min_fanout_work - 1) pool = None
         && Pool.gate ~work:Pool.min_fanout_work pool == pool
         && Pool.gate ~work:0 None = None));
  (* 7. Optionally: the full E1-E17 suite, -j 1 vs -j [jobs]. *)
  let suite_timing =
    if not full then None
    else begin
      let names = List.map fst experiments in
      let render pool =
        List.iter (fun nm -> ignore (run_experiment ~quick:false ~pool nm))
      in
      Printf.printf "  timing full suite at -j 1 ...\n%!";
      let (), seq_s = wall_time (fun () -> render None names) in
      Printf.printf "  timing full suite at -j %d ...\n%!" width;
      let (), par_s =
        wall_time (fun () ->
            Pool.with_pool ~domains:width (fun pool ->
                ignore
                  (Pool.parallel_map ~pool
                     (fun nm -> run_experiment ~quick:false ~pool:None nm)
                     (Array.of_list names))))
      in
      Some (seq_s, par_s)
    end
  in
  let pass = !failures = 0 in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
     %s\
    \  \"benchmark\": \"parallel_smoke\",\n\
    \  \"cores_available\": %d,\n\
    \  \"pool_width\": %d,\n\
    \  \"e16_quick_wall_s\": { \"sequential\": %.4f, \"pooled\": %.4f, \
     \"speedup\": %.2f },\n\
    \  \"kernel_build_ns\": { \"whole\": %.0f, \"whole_in_pool\": %.0f, \
     \"auto_pool\": %.0f, \"forced_shard\": %.0f, \"commodities\": %d, \
     \"paths\": %d, \"entries\": %d },\n"
    (meta_block ())
    (Domain.recommended_domain_count ())
    width e16_seq_s e16_pooled_s
    (e16_seq_s /. e16_pooled_s)
    (per_build whole_build_s)
    (per_build whole_in_pool_s)
    (per_build auto_build_s)
    (per_build forced_build_s)
    (Instance.commodity_count kinst)
    n
    (Rate_kernel.entry_count kinst);
  (match suite_timing with
  | Some (seq_s, par_s) ->
      Printf.fprintf oc
        "  \"full_suite_wall_s\": { \"j1\": %.2f, \"j%d\": %.2f, \
         \"speedup\": %.2f },\n"
        seq_s width par_s (seq_s /. par_s)
  | None -> ());
  Printf.fprintf oc
    "  \"output_byte_identical\": %b,\n  \"pass\": %b\n}\n"
    (!failures = 0) pass;
  close_out oc;
  Printf.printf "(parallel smoke written to %s)\n%!" json_path;
  if not pass then exit 1

(* --- Perf smoke: allocation contracts of the numeric hot path --- *)

(* Minor words per call of [f], measured by differencing two batch
   sizes so per-measurement setup (including the boxed float
   [Gc.minor_words] itself returns) cancels out. *)
let words_per_call f =
  let measure n =
    f ();
    let before = Gc.minor_words () in
    for _ = 1 to n do
      f ()
    done;
    Gc.minor_words () -. before
  in
  let reps = 1000 in
  (measure (reps + 1) -. measure 1) /. float_of_int reps

(* The allocation contracts the Bigarray switch must preserve: the
   disabled-probe Euler step and every in-place [Vec] operation stay at
   0 minor words, and an incremental kernel update allocates at most a
   small constant (its per-call bookkeeping), never per matrix entry.
   Only meaningful under the native compiler — bytecode boxes
   everything, so the checks auto-pass there.  Writes BENCH_perf.json;
   exits non-zero on any violation. *)
let perf_smoke ~json_path () =
  let open Staleroute_wardrop in
  let open Staleroute_dynamics in
  let failures = ref 0 in
  let native =
    match Sys.backend_type with Sys.Native -> true | _ -> false
  in
  let check name ok =
    Printf.printf "  %-48s %s\n%!" name
      (if ok || not native then "ok" else "FAIL");
    if (not ok) && native then incr failures
  in
  let inst = multicommodity_parallel 20 in
  let policy = Policy.uniform_linear inst in
  let flow = Flow.uniform inst in
  let board = Bulletin_board.post inst ~time:0. flow in
  let kernel = Rate_kernel.build inst policy ~board in
  let euler_words = euler_words_per_step inst kernel in
  check "probes off: euler step minor words = 0" (euler_words = 0.);
  let n = Instance.path_count inst in
  let x = Staleroute_util.Vec.create n 1.5 in
  let y = Staleroute_util.Vec.create n 0.5 in
  let vec_ops =
    [
      ("fill", fun () -> Staleroute_util.Vec.fill y 0.5);
      ("blit", fun () -> Staleroute_util.Vec.blit ~src:x ~dst:y);
      ("add_", fun () -> Staleroute_util.Vec.add_ ~x ~y);
      ("scale_", fun () -> Staleroute_util.Vec.scale_ 1.0000001 y);
      ("axpy", fun () -> Staleroute_util.Vec.axpy ~alpha:1e-9 ~x ~y);
    ]
  in
  let vec_words =
    List.map (fun (name, f) -> (name, words_per_call f)) vec_ops
  in
  List.iter
    (fun (name, w) ->
      check (Printf.sprintf "vec %s minor words = 0" name) (w = 0.))
    vec_words;
  (* Update between two genuinely different boards, so the refresh
     actually runs.  The bound is a small constant: a per-entry
     allocation on this instance would cost hundreds of words. *)
  let flow2 = perturb_shares inst flow in
  let board2 = Bulletin_board.post inst ~time:1e-3 flow2 in
  let uk = Rate_kernel.build inst policy ~board in
  let flip = ref false in
  let update_words =
    words_per_call (fun () ->
        flip := not !flip;
        ignore
          (Rate_kernel.update uk ~board:(if !flip then board2 else board)))
  in
  check "kernel update minor words <= 64 (no per-entry alloc)"
    (update_words <= 64.);
  (* Steady-state repost cost: with a persistent delta scratch, a
     repost allocates only the new board's own arrays (flow copy, edge
     and path latencies, the record) — bounded by the instance, never
     by scan work.  A per-dirty-entry allocation would blow well past
     the bound. *)
  let delta = Bulletin_board.delta () in
  let flow3 =
    let g = Staleroute_util.Vec.copy flow in
    Staleroute_util.Vec.set g 0 (Staleroute_util.Vec.get g 0 -. 0.004);
    Staleroute_util.Vec.set g 1 (Staleroute_util.Vec.get g 1 +. 0.004);
    g
  in
  let prev = ref board in
  let rflip = ref false in
  let repost_words =
    words_per_call (fun () ->
        rflip := not !rflip;
        prev :=
          Bulletin_board.repost ~delta inst ~prev:!prev ~time:0.
            (if !rflip then flow3 else flow))
  in
  check "repost minor words <= 256 (board arrays only)"
    (repost_words <= 256.);
  (* Per-post work scales with the delta, not the network: on 200
     parallel links a two-path transfer re-gathers exactly the two
     touched edges. *)
  let big = multicommodity_parallel 200 in
  let bflow = Flow.uniform big in
  let bprev = Bulletin_board.post big ~time:0. bflow in
  let bflow2 =
    let g = Staleroute_util.Vec.copy bflow in
    Staleroute_util.Vec.set g 0 (Staleroute_util.Vec.get g 0 -. 0.002);
    Staleroute_util.Vec.set g 1 (Staleroute_util.Vec.get g 1 +. 0.002);
    g
  in
  ignore (Bulletin_board.repost ~delta big ~prev:bprev ~time:1. bflow2);
  let big_dirty = Bulletin_board.dirty_edges delta in
  check "two-path transfer dirties 2 of 200 edges" (big_dirty = 2);
  let pass = !failures = 0 in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
     %s\
    \  \"benchmark\": \"perf_smoke\",\n\
    \  \"cores_available\": %d,\n\
    \  \"native\": %b,\n\
    \  \"euler_minor_words_per_step\": %.2f,\n\
    \  \"vec_minor_words_per_call\": { %s },\n\
    \  \"kernel_update_minor_words_per_call\": %.2f,\n\
    \  \"repost_minor_words_per_call\": %.2f,\n\
    \  \"repost_dirty_edges_two_path_transfer\": %d,\n\
    \  \"pass\": %b\n\
     }\n"
    (meta_block ())
    (Domain.recommended_domain_count ())
    native euler_words
    (String.concat ", "
       (List.map
          (fun (name, w) -> Printf.sprintf "\"%s\": %.2f" name w)
          vec_words))
    update_words repost_words big_dirty pass;
  close_out oc;
  Printf.printf "(perf smoke written to %s)\n%!" json_path;
  if not pass then exit 1

(* --- Obs smoke: spans, trace read-back and the regression gate --- *)

(* Ground truth for the observability layer: same-seed versioned traces
   diff as identical while different seeds diverge at a pinpointed
   event; Trace_reader round-trips write_trace output (and still accepts
   legacy headerless traces); the disabled span recorder keeps the
   0-allocation contract; an enabled recorder actually sees the driver's
   kernel builds; and the bench comparator passes a file against itself,
   hard-fails a tampered contract field and stays advisory on timing
   drift.  Writes BENCH_obs.json; exits non-zero on any failure. *)
let obs_smoke ~json_path () =
  let open Staleroute_wardrop in
  let open Staleroute_dynamics in
  let failures = ref 0 in
  let check name ok =
    Printf.printf "  %-48s %s\n%!" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  let inst = Common.two_link ~beta:4. in
  let policy = Policy.uniform_linear inst in
  let config =
    {
      Driver.policy;
      staleness = Driver.Stale 0.1;
      phases = 4;
      steps_per_phase = 6;
      scheme = Integrator.Rk4;
    }
  in
  let capture ~seed ?spans () =
    let buf = Probe.Memory.create () in
    let init = Flow.random inst (Staleroute_util.Rng.create ~seed ()) in
    ignore (Driver.run ~probe:(Probe.Memory.probe buf) ?spans inst config ~init);
    Probe.Memory.events buf
  in
  let write_tmp writer events =
    let path = Filename.temp_file "obs_smoke" ".jsonl" in
    let oc = open_out_bin path in
    writer oc events;
    close_out oc;
    path
  in
  (* 1. Same-seed traces are identical; different seeds diverge at a
     named event (the header line is seed-independent, so divergence
     starts at line >= 2). *)
  let ev42 = capture ~seed:42 () in
  let ta = write_tmp Trace_export.write_trace ev42 in
  let tb = write_tmp Trace_export.write_trace (capture ~seed:42 ()) in
  let tc = write_tmp Trace_export.write_trace (capture ~seed:43 ()) in
  let diff_identical =
    match Trace_reader.diff_files ta tb with
    | Ok (Trace_reader.Identical { events }) -> events = Array.length ev42
    | _ -> false
  in
  check "same-seed traces diff as identical" diff_identical;
  let diff_diverged =
    match Trace_reader.diff_files ta tc with
    | Ok (Trace_reader.Diverged d) ->
        d.Trace_reader.line >= 2
        && d.Trace_reader.left_event <> None
        && d.Trace_reader.right_event <> None
    | _ -> false
  in
  check "seed 42 vs 43 diverges at a parsed event" diff_diverged;
  (* 2. Read-back: a versioned trace returns its schema stamp and the
     events it was written from; a legacy headerless trace still reads
     (meta = None).  Equality via the canonical serialisation. *)
  let reserialize evs = Trace_export.events_to_string (Array.of_list evs) in
  let versioned_rt =
    match Trace_reader.read_file ta with
    | Ok (Some { Trace_reader.schema }, evs) ->
        schema = Trace_export.schema_version
        && String.equal (reserialize evs) (Trace_export.events_to_string ev42)
    | _ -> false
  in
  check "versioned trace round-trips with schema stamp" versioned_rt;
  let legacy = write_tmp Trace_export.write_events ev42 in
  let legacy_rt =
    match Trace_reader.read_file legacy with
    | Ok (None, evs) ->
        String.equal (reserialize evs) (Trace_export.events_to_string ev42)
    | _ -> false
  in
  check "legacy headerless trace still reads" legacy_rt;
  List.iter Sys.remove [ ta; tb; tc; legacy ];
  (* 3. Allocation contract: enter/exit on the null recorder is a
     branch, nothing else (meaningful under the native compiler only). *)
  let native =
    match Sys.backend_type with Sys.Native -> true | _ -> false
  in
  let null_words =
    words_per_call (fun () ->
        let s = Span.enter Span.null "hot" in
        Span.exit Span.null s)
  in
  check "spans off: enter/exit minor words = 0"
    ((not native) || null_words = 0.);
  (* 4. An enabled recorder sees the driver's work: one kernel_build,
     a rebuild per later phase, and per-phase spans whose self time
     excludes their children. *)
  let spans = Span.create () in
  ignore (capture ~seed:42 ~spans ());
  let prof = Span.profile spans in
  let entry name = List.find_opt (fun e -> e.Span.name = name) prof in
  let span_counts =
    match (entry "kernel_build", entry "phase") with
    | Some kb, Some ph -> kb.Span.count >= 1 && ph.Span.count = config.phases
    | _ -> false
  in
  check "enabled spans: kernel_build and per-phase entries" span_counts;
  let self_bounded =
    List.for_all (fun e -> e.Span.self_ns <= e.Span.total_ns +. 1e-6) prof
  in
  check "enabled spans: self time <= total time" self_bounded;
  (* 5. The comparator: a file passes against itself; flipping a
     contract field hard-fails; drifting a timing key is advisory. *)
  let fake base fresh =
    let write s =
      let path = Filename.temp_file "obs_cmp" ".json" in
      let oc = open_out_bin path in
      output_string oc s;
      close_out oc;
      path
    in
    let b = write base and f = write fresh in
    let r = Bench_compare.compare_files ~baseline:b ~fresh:f in
    Sys.remove b;
    Sys.remove f;
    r
  in
  let base =
    "{ \"benchmark\": \"x\", \"pass\": true, \"build_ns\": 100.0, \
     \"count\": 7 }"
  in
  let cmp_self =
    match fake base base with Ok o -> Bench_compare.passed o | Error _ -> false
  in
  check "comparator: file vs itself passes" cmp_self;
  let cmp_tamper =
    match
      fake base
        "{ \"benchmark\": \"x\", \"pass\": false, \"build_ns\": 100.0, \
         \"count\": 7 }"
    with
    | Ok o -> not (Bench_compare.passed o)
    | Error _ -> false
  in
  check "comparator: tampered contract field fails" cmp_tamper;
  let cmp_advisory =
    match
      fake base
        "{ \"benchmark\": \"x\", \"pass\": true, \"build_ns\": 900.0, \
         \"count\": 7 }"
    with
    | Ok o -> Bench_compare.passed o && List.length o.Bench_compare.advisories = 1
    | Error _ -> false
  in
  check "comparator: timing drift is advisory only" cmp_advisory;
  let pass = !failures = 0 in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
     %s\
    \  \"benchmark\": \"obs_smoke\",\n\
    \  \"cores_available\": %d,\n\
    \  \"trace\": { \"events\": %d, \"same_seed_identical\": %b, \
     \"cross_seed_diverged\": %b, \"versioned_roundtrip\": %b, \
     \"legacy_roundtrip\": %b },\n\
    \  \"null_span_minor_words_per_call\": %.2f,\n\
    \  \"span_profile_seen\": %b,\n\
    \  \"comparator\": { \"self_pass\": %b, \"tamper_fails\": %b, \
     \"timing_advisory\": %b },\n\
    \  \"pass\": %b\n\
     }\n"
    (meta_block ())
    (Domain.recommended_domain_count ())
    (Array.length ev42) diff_identical diff_diverged versioned_rt legacy_rt
    null_words span_counts cmp_self cmp_tamper cmp_advisory pass;
  close_out oc;
  Printf.printf "(obs smoke written to %s)\n%!" json_path;
  if not pass then exit 1

let json_path = ref "BENCH_rates.json"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let args = List.filter (fun a -> a <> "quick") args in
  if List.mem "metrics" args then with_metrics := true;
  let args = List.filter (fun a -> a <> "metrics") args in
  if List.mem "profile" args then with_profile := true;
  let args = List.filter (fun a -> a <> "profile") args in
  (* "-j N": experiments fan out across N domains.  Output is
     byte-identical at any N; the default follows the hardware. *)
  let jobs = ref (Domain.recommended_domain_count ()) in
  let rec strip_jobs = function
    | "-j" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> jobs := j
        | _ ->
            Printf.eprintf "-j expects a positive integer, got %S\n" n;
            exit 2);
        strip_jobs rest
    | "-j" :: [] ->
        Printf.eprintf "-j expects a positive integer\n";
        exit 2
    | a :: rest -> a :: strip_jobs rest
    | [] -> []
  in
  let args = strip_jobs args in
  let args =
    List.filter
      (fun a ->
        match String.index_opt a '=' with
        | Some i when String.sub a 0 i = "csv" ->
            let dir = String.sub a (i + 1) (String.length a - i - 1) in
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            csv_dir := Some dir;
            false
        | Some i when String.sub a 0 i = "json" ->
            json_path := String.sub a (i + 1) (String.length a - i - 1);
            false
        | _ -> true)
      args
  in
  let all_names = List.map fst experiments in
  match args with
  | [] -> run_experiments ~quick ~jobs:!jobs all_names
  | [ "micro" ] ->
      micro ();
      bench_rates ~quota_s:(if quick then 0.05 else 0.5)
        ~json_path:!json_path ()
  | [ "bench-smoke" ] ->
      (* Tiny-quota comparison for CI: seconds, not minutes. *)
      bench_rates ~quota_s:0.05 ~json_path:!json_path ()
  | [ "trace-smoke" ] ->
      trace_smoke
        ~json_path:
          (if !json_path = "BENCH_rates.json" then "BENCH_trace.json"
           else !json_path)
        ()
  | [ "fault-smoke" ] ->
      fault_smoke
        ~json_path:
          (if !json_path = "BENCH_rates.json" then "BENCH_faults.json"
           else !json_path)
        ()
  | [ "perf-smoke" ] ->
      perf_smoke
        ~json_path:
          (if !json_path = "BENCH_rates.json" then "BENCH_perf.json"
           else !json_path)
        ()
  | [ "colgen-smoke" ] ->
      colgen_smoke
        ~json_path:
          (if !json_path = "BENCH_rates.json" then "BENCH_colgen.json"
           else !json_path)
        ()
  | [ "obs-smoke" ] ->
      obs_smoke
        ~json_path:
          (if !json_path = "BENCH_rates.json" then "BENCH_obs.json"
           else !json_path)
        ()
  | "compare" :: rest -> (
      (* Regression gate: committed BENCH_*.json baselines vs the fresh
         files the smoke aliases wrote (same comparator as bench_diff). *)
      match rest with
      | [ baseline_dir ] ->
          exit
            (Bench_compare.run ~baseline_dir
               ~fresh_dir:
                 (Filename.concat (Filename.concat "_build" "default") "bench"))
      | [ baseline_dir; fresh_dir ] ->
          exit (Bench_compare.run ~baseline_dir ~fresh_dir)
      | _ ->
          Printf.eprintf "compare expects BASELINE_DIR [FRESH_DIR]\n";
          exit 2)
  | "parallel-smoke" :: rest
    when rest = [] || rest = [ "full" ] ->
      parallel_smoke ~jobs:!jobs ~full:(rest = [ "full" ])
        ~json_path:
          (if !json_path = "BENCH_rates.json" then "BENCH_parallel.json"
           else !json_path)
        ()
  | [ "all" ] ->
      run_experiments ~quick ~jobs:!jobs all_names;
      micro ();
      bench_rates ~quota_s:(if quick then 0.05 else 0.5)
        ~json_path:!json_path ()
  | names -> run_experiments ~quick ~jobs:!jobs names
