(* Benchmark and experiment harness.

   Usage:
     main.exe              run every experiment (full size) and print tables
     main.exe e1 .. e9     run a single experiment
     main.exe micro        run the Bechamel microbenchmarks (also writes
                           the BENCH_rates.json perf trajectory)
     main.exe bench-smoke  tiny-quota kernel-vs-reference comparison only;
                           writes BENCH_rates.json (also `dune build
                           @bench-smoke`)
     main.exe trace-smoke  instrumented mini-runs checking probe event
                           counts and the allocation-free disabled path;
                           writes BENCH_trace.json (also `dune build
                           @trace-smoke`)
     main.exe all          experiments + microbenchmarks
   Add "quick" anywhere to use the reduced parameter sets;
   "metrics" instruments every experiment and prints its metric
   snapshot; "json=FILE" redirects the perf trajectory. *)

open Staleroute_experiments
module Table = Staleroute_util.Table
module Probe = Staleroute_obs.Probe
module Metrics = Staleroute_obs.Metrics
module Trace_export = Staleroute_obs.Trace_export

(* When [csv_dir] is set ("csv=DIR" argument), every printed table is
   also written to DIR/<slug>.csv. *)
let csv_dir = ref None

let slug_of_title title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '-')
    title
  |> fun s ->
  (* Collapse runs of dashes and trim. *)
  let buf = Buffer.create (String.length s) in
  let last_dash = ref true in
  String.iter
    (fun c ->
      if c = '-' then begin
        if not !last_dash then Buffer.add_char buf '-';
        last_dash := true
      end
      else begin
        Buffer.add_char buf c;
        last_dash := false
      end)
    s;
  let s = Buffer.contents buf in
  if String.length s > 60 then String.sub s 0 60 else s

let print_tables tables =
  List.iter
    (fun table ->
      Table.print table;
      match !csv_dir with
      | None -> ()
      | Some dir ->
          let path =
            Filename.concat dir (slug_of_title (Table.title table) ^ ".csv")
          in
          let oc = open_out path in
          output_string oc (Table.to_csv table);
          output_char oc '\n';
          close_out oc;
          Printf.printf "(csv written to %s)\n%!" path)
    tables

let print_figures figures = List.iter print_endline figures

let experiments =
  [
    ( "e1",
      fun ~quick ->
        print_tables (E1_oscillation.tables ~quick ());
        print_figures (E1_oscillation.figures ~quick ()) );
    ("e2", fun ~quick -> print_tables (E2_fresh_convergence.tables ~quick ()));
    ("e3", fun ~quick -> print_tables (E3_stale_convergence.tables ~quick ()));
    ( "e4",
      fun ~quick -> print_tables (E4_potential_inequality.tables ~quick ()) );
    ("e5", fun ~quick -> print_tables (E5_uniform_scaling.tables ~quick ()));
    ( "e6",
      fun ~quick -> print_tables (E6_proportional_scaling.tables ~quick ()) );
    ("e7", fun ~quick -> print_tables (E7_delta_eps_scaling.tables ~quick ()));
    ("e8", fun ~quick -> print_tables (E8_finite_population.tables ~quick ()));
    ("e9", fun ~quick -> print_tables (E9_ablation.tables ~quick ()));
    ("e10", fun ~quick -> print_tables (E10_elastic_policy.tables ~quick ()));
    ("e11", fun ~quick -> print_tables (E11_stale_vs_random.tables ~quick ()));
    ("e12", fun ~quick -> print_tables (E12_multicommodity.tables ~quick ()));
    ( "e13",
      fun ~quick -> print_tables (E13_convergence_rate.tables ~quick ()) );
    ( "e14",
      fun ~quick -> print_tables (E14_synchronous_rounds.tables ~quick ()) );
    ( "e15",
      fun ~quick -> print_tables (E15_polled_information.tables ~quick ()) );
    ( "e16",
      fun ~quick ->
        print_tables (E16_phase_diagram.tables ~quick ());
        print_figures (E16_phase_diagram.figures ~quick ()) );
  ]

(* --- Bechamel microbenchmarks of the hot paths --- *)

(* A multi-commodity load-balancing workload for the rate benchmarks:
   two commodities splitting the unit demand over [m] parallel links
   each, i.e. [2 m] paths in the global index. *)
let multicommodity_parallel m =
  let open Staleroute_wardrop in
  let st = Staleroute_graph.Gen.parallel_links m in
  let latencies =
    Array.init m (fun j ->
        Staleroute_latency.Latency.affine
          ~slope:(float_of_int (1 + (j mod 3)))
          ~intercept:(0.3 *. float_of_int j /. float_of_int m))
  in
  Instance.create ~graph:st.Staleroute_graph.Gen.graph ~latencies
    ~commodities:
      [
        Commodity.make ~src:st.Staleroute_graph.Gen.src
          ~dst:st.Staleroute_graph.Gen.dst ~demand:0.5;
        Commodity.make ~src:st.Staleroute_graph.Gen.src
          ~dst:st.Staleroute_graph.Gen.dst ~demand:0.5;
      ]
    ()

let ols_estimate results name =
  let found = ref None in
  Hashtbl.iter
    (fun key ols ->
      if key = name then
        match Bechamel.Analyze.OLS.estimates ols with
        | Some (x :: _) -> found := Some x
        | _ -> ())
    results;
  !found

(* Words allocated on the minor heap per in-place Euler step, measured
   by differencing two step counts so per-call setup cancels out. *)
let euler_words_per_step inst kernel =
  let open Staleroute_wardrop in
  let open Staleroute_dynamics in
  let pool =
    Staleroute_util.Vec.Pool.create ~dim:(Instance.path_count inst)
  in
  let measure steps =
    let f = Flow.uniform inst in
    Integrator.integrate_phase_into Integrator.Euler inst ~pool
      ~deriv_into:(Rate_kernel.flow_derivative_into kernel)
      ~f ~tau:0.001 ~steps:1;
    let before = Gc.minor_words () in
    Integrator.integrate_phase_into Integrator.Euler inst ~pool
      ~deriv_into:(Rate_kernel.flow_derivative_into kernel)
      ~f ~tau:0.001 ~steps;
    Gc.minor_words () -. before
  in
  (measure 1001 -. measure 1) /. 1000.

(* The perf-trajectory benchmark: reference vs compiled rate kernel on
   the multi-commodity workload.  Prints a table and exports
   BENCH_rates.json so later PRs can track regressions. *)
let bench_rates ~quota_s ~json_path () =
  let open Bechamel in
  let open Staleroute_wardrop in
  let open Staleroute_dynamics in
  let m = 20 in
  let inst = multicommodity_parallel m in
  let policy = Policy.uniform_linear inst in
  let flow = Flow.uniform inst in
  let board = Bulletin_board.post inst ~time:0. flow in
  let kernel = Rate_kernel.build inst policy ~board in
  let dst = Array.make (Instance.path_count inst) 0. in
  let tests =
    [
      Test.make ~name:"reference"
        (Staged.stage (fun () ->
             ignore (Rates.flow_derivative inst policy ~board flow)));
      Test.make ~name:"kernel"
        (Staged.stage (fun () ->
             Rate_kernel.flow_derivative_into kernel flow ~dst));
      Test.make ~name:"kernel-build"
        (Staged.stage (fun () ->
             ignore (Rate_kernel.build inst policy ~board)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let raw =
    Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ]
      (Test.make_grouped ~name:"rates" ~fmt:"%s %s" tests)
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let get name =
    match ols_estimate results ("rates " ^ name) with
    | Some ns -> ns
    | None -> nan
  in
  let ref_ns = get "reference" in
  let kern_ns = get "kernel" in
  let build_ns = get "kernel-build" in
  let words = euler_words_per_step inst kernel in
  let paths = Instance.path_count inst in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Rate kernel vs reference (%d paths, 2 commodities)" paths)
      ~columns:[ "path"; "ns/op" ]
  in
  Table.add_row table [ "reference flow_derivative"; Printf.sprintf "%.1f" ref_ns ];
  Table.add_row table [ "kernel flow_derivative"; Printf.sprintf "%.1f" kern_ns ];
  Table.add_row table [ "kernel build (per board post)"; Printf.sprintf "%.1f" build_ns ];
  Table.add_row table [ "speedup"; Printf.sprintf "%.1fx" (ref_ns /. kern_ns) ];
  Table.add_row table
    [ "euler step minor words"; Printf.sprintf "%.2f" words ];
  Table.print table;
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"flow_derivative_rates\",\n\
    \  \"instance\": { \"paths\": %d, \"commodities\": %d },\n\
    \  \"ns_per_op\": {\n\
    \    \"reference\": %.2f,\n\
    \    \"kernel\": %.2f,\n\
    \    \"kernel_build\": %.2f\n\
    \  },\n\
    \  \"speedup_kernel_vs_reference\": %.2f,\n\
    \  \"euler_minor_words_per_step\": %.2f\n\
     }\n"
    paths
    (Instance.commodity_count inst)
    ref_ns kern_ns build_ns (ref_ns /. kern_ns) words;
  close_out oc;
  Printf.printf "(perf trajectory written to %s)\n%!" json_path

let micro () =
  let open Bechamel in
  let open Staleroute_wardrop in
  let open Staleroute_dynamics in
  let inst = Common.parallel 16 in
  let braess = Common.braess () in
  let flow = Flow.uniform inst in
  let board = Bulletin_board.post inst ~time:0. flow in
  let policy = Policy.replicator inst in
  let grid = Staleroute_graph.Gen.grid ~width:6 ~height:6 in
  let weights =
    Array.init
      (Staleroute_graph.Digraph.edge_count grid.Staleroute_graph.Gen.graph)
      (fun e -> 1. +. float_of_int (e mod 7))
  in
  let kernel = Rate_kernel.build inst policy ~board in
  let dst = Array.make (Instance.path_count inst) 0. in
  let pool = Staleroute_util.Vec.Pool.create ~dim:(Instance.path_count inst) in
  let tests =
    [
      Test.make ~name:"flow-derivative reference (16 paths)"
        (Staged.stage (fun () ->
             ignore (Rates.flow_derivative inst policy ~board flow)));
      Test.make ~name:"flow-derivative kernel (16 paths)"
        (Staged.stage (fun () ->
             Rate_kernel.flow_derivative_into kernel flow ~dst));
      Test.make ~name:"rate-kernel build (16 paths)"
        (Staged.stage (fun () ->
             ignore (Rate_kernel.build inst policy ~board)));
      Test.make ~name:"potential (16 paths)"
        (Staged.stage (fun () -> ignore (Potential.phi inst flow)));
      Test.make ~name:"rk4 phase step reference (16 paths)"
        (Staged.stage (fun () ->
             let deriv g = Rates.flow_derivative inst policy ~board g in
             ignore
               (Integrator.integrate_phase Integrator.Rk4 inst ~deriv
                  ~f0:flow ~tau:0.1 ~steps:1)));
      Test.make ~name:"rk4 phase step kernel in-place (16 paths)"
        (Staged.stage (fun () ->
             let f = Staleroute_util.Vec.copy flow in
             Integrator.integrate_phase_into Integrator.Rk4 inst ~pool
               ~deriv_into:(Rate_kernel.flow_derivative_into kernel)
               ~f ~tau:0.1 ~steps:1));
      Test.make ~name:"dijkstra (6x6 grid)"
        (Staged.stage (fun () ->
             ignore
               (Staleroute_graph.Dijkstra.run grid.Staleroute_graph.Gen.graph
                  ~weights ~src:0)));
      Test.make ~name:"path enumeration (braess)"
        (Staged.stage (fun () ->
             ignore
               (Staleroute_graph.Path_enum.all_simple_paths
                  (Instance.graph braess) ~src:0 ~dst:3)));
      Test.make ~name:"frank-wolfe iteration (braess)"
        (Staged.stage (fun () ->
             ignore (Frank_wolfe.equilibrium ~max_iter:1 braess)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let raw =
    Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ]
      (Test.make_grouped ~name:"staleroute" ~fmt:"%s %s" tests)
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"Microbenchmarks (monotonic clock)"
      ~columns:[ "benchmark"; "ns/run" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Printf.sprintf "%.1f" x
        | _ -> "n/a"
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) -> Table.add_row table [ name; ns ])
    (List.sort compare !rows);
  Table.print table

(* --- Instrumented smoke runs: probe/metric ground truth --- *)

(* Tiny instrumented runs asserting the telemetry contract: event
   counts match the board-posting cadence (once per phase under Stale,
   once per integrator step under Fresh), the per-phase potentials in
   the event stream equal the driver's records, same-config traces are
   byte-identical, and the disabled-probe Euler hot path still
   allocates nothing.  Writes BENCH_trace.json; exits non-zero on any
   failure. *)
let trace_smoke ~json_path () =
  let open Staleroute_wardrop in
  let open Staleroute_dynamics in
  let failures = ref 0 in
  let check name ok =
    Printf.printf "  %-48s %s\n%!" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  (* Stale information on the E1 oscillation workload. *)
  let inst = Common.two_link ~beta:4. in
  let policy = Policy.uniform_linear inst in
  let phases = 6 and steps = 8 in
  let config =
    {
      Driver.policy;
      staleness = Driver.Stale 0.1;
      phases;
      steps_per_phase = steps;
      scheme = Integrator.Rk4;
    }
  in
  let init = Common.biased_start inst in
  let capture () =
    let buf = Probe.Memory.create () in
    let metrics = Metrics.create () in
    let result =
      Driver.run ~probe:(Probe.Memory.probe buf) ~metrics inst config ~init
    in
    (buf, metrics, result)
  in
  let buf, metrics, result = capture () in
  let count buf p = Probe.Memory.count buf p in
  let stale_reposts =
    count buf (function Probe.Board_repost _ -> true | _ -> false)
  in
  let stale_rebuilds =
    count buf (function Probe.Kernel_rebuild _ -> true | _ -> false)
  in
  check "stale: board reposts = phases" (stale_reposts = phases);
  check "stale: kernel rebuilds = phases" (stale_rebuilds = phases);
  check "stale: rebuild counter agrees with events"
    (Metrics.count (Metrics.counter metrics "kernel_rebuilds")
    = stale_rebuilds);
  let phis =
    Array.of_list
      (List.filter_map
         (function
           | Probe.Phase_start { potential; _ } -> Some potential | _ -> None)
         (Array.to_list (Probe.Memory.events buf)))
  in
  let phi_agree = ref (Array.length phis = Array.length result.Driver.records) in
  Array.iteri
    (fun i (r : Driver.phase_record) ->
      if
        !phi_agree
        && Float.abs (phis.(i) -. r.Driver.start_potential) > 1e-12
      then phi_agree := false)
    result.Driver.records;
  check "stale: phase_start phi = driver records (1e-12)" !phi_agree;
  let buf2, _, _ = capture () in
  let s1 = Trace_export.events_to_string (Probe.Memory.events buf) in
  let s2 = Trace_export.events_to_string (Probe.Memory.events buf2) in
  let identical = String.equal s1 s2 in
  check "stale: same-config trace byte-identical" identical;
  (* Fresh information re-posts every integrator step. *)
  let binst = Common.braess () in
  let fphases = 3 and fsteps = 5 in
  let fconfig =
    {
      Driver.policy = Policy.uniform_linear binst;
      staleness = Driver.Fresh;
      phases = fphases;
      steps_per_phase = fsteps;
      scheme = Integrator.Euler;
    }
  in
  let fbuf = Probe.Memory.create () in
  ignore
    (Driver.run ~probe:(Probe.Memory.probe fbuf) binst fconfig
       ~init:(Flow.uniform binst));
  let fresh_rebuilds =
    count fbuf (function Probe.Kernel_rebuild _ -> true | _ -> false)
  in
  check "fresh: kernel rebuilds = phases * steps"
    (fresh_rebuilds = fphases * fsteps);
  (* The disabled-probe hot path must stay allocation-free (the
     measurement is only meaningful under the native compiler). *)
  let words =
    let board = Bulletin_board.post inst ~time:0. (Flow.uniform inst) in
    euler_words_per_step inst (Rate_kernel.build inst policy ~board)
  in
  let native =
    match Sys.backend_type with Sys.Native -> true | _ -> false
  in
  check "probes off: euler step minor words = 0"
    ((not native) || words = 0.);
  let pass = !failures = 0 in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"trace_smoke\",\n\
    \  \"stale\": { \"phases\": %d, \"board_reposts\": %d, \
     \"kernel_rebuilds\": %d },\n\
    \  \"fresh\": { \"phases\": %d, \"steps_per_phase\": %d, \
     \"kernel_rebuilds\": %d },\n\
    \  \"trace_byte_identical\": %b,\n\
    \  \"euler_minor_words_per_step_probes_off\": %.2f,\n\
    \  \"pass\": %b\n\
     }\n"
    phases stale_reposts stale_rebuilds fphases fsteps fresh_rebuilds
    identical words pass;
  close_out oc;
  Printf.printf "(trace smoke written to %s)\n%!" json_path;
  if not pass then exit 1

let json_path = ref "BENCH_rates.json"
let with_metrics = ref false

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let args = List.filter (fun a -> a <> "quick") args in
  if List.mem "metrics" args then with_metrics := true;
  let args = List.filter (fun a -> a <> "metrics") args in
  let args =
    List.filter
      (fun a ->
        match String.index_opt a '=' with
        | Some i when String.sub a 0 i = "csv" ->
            let dir = String.sub a (i + 1) (String.length a - i - 1) in
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            csv_dir := Some dir;
            false
        | Some i when String.sub a 0 i = "json" ->
            json_path := String.sub a (i + 1) (String.length a - i - 1);
            false
        | _ -> true)
      args
  in
  let run_experiment name =
    match List.assoc_opt name experiments with
    | Some f ->
        Printf.printf "\n### Experiment %s ###\n%!" (String.uppercase_ascii name);
        if !with_metrics then begin
          (* Ambient instrumentation: every Common.run inside the
             experiment reports into this registry. *)
          let metrics = Metrics.create () in
          Common.set_instrumentation ~probe:Probe.null ~metrics;
          Fun.protect
            ~finally:(fun () -> Common.clear_instrumentation ())
            (fun () -> f ~quick);
          print_tables
            [ Metrics.to_table ~title:(name ^ " metrics")
                (Metrics.snapshot metrics) ]
        end
        else f ~quick
    | None ->
        Printf.eprintf "unknown experiment %S\n" name;
        exit 2
  in
  match args with
  | [] -> List.iter (fun (name, _) -> run_experiment name) experiments
  | [ "micro" ] ->
      micro ();
      bench_rates ~quota_s:(if quick then 0.05 else 0.5)
        ~json_path:!json_path ()
  | [ "bench-smoke" ] ->
      (* Tiny-quota comparison for CI: seconds, not minutes. *)
      bench_rates ~quota_s:0.05 ~json_path:!json_path ()
  | [ "trace-smoke" ] ->
      trace_smoke
        ~json_path:
          (if !json_path = "BENCH_rates.json" then "BENCH_trace.json"
           else !json_path)
        ()
  | [ "all" ] ->
      List.iter (fun (name, _) -> run_experiment name) experiments;
      micro ();
      bench_rates ~quota_s:(if quick then 0.05 else 0.5)
        ~json_path:!json_path ()
  | names -> List.iter run_experiment names
