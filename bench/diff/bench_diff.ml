(* Standalone BENCH_*.json regression gate:
     bench_diff BASELINE_DIR [FRESH_DIR]
   compares every committed baseline in BASELINE_DIR against the
   freshly written files in FRESH_DIR (default: _build/default/bench,
   where the smoke aliases write).  Exit 0 = pass, 1 = regression,
   2 = usage or IO error. *)

let default_fresh = Filename.concat (Filename.concat "_build" "default") "bench"

let () =
  match Array.to_list Sys.argv with
  | [ _; baseline_dir ] ->
      exit (Bench_compare.run ~baseline_dir ~fresh_dir:default_fresh)
  | [ _; baseline_dir; fresh_dir ] ->
      exit (Bench_compare.run ~baseline_dir ~fresh_dir)
  | _ ->
      prerr_endline
        "usage: bench_diff BASELINE_DIR [FRESH_DIR]\n\
         Compare committed BENCH_*.json baselines against freshly written \
         bench output (default FRESH_DIR: _build/default/bench).";
      exit 2
