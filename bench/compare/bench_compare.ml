(* Regression gate over the committed BENCH_*.json baselines.

   Every numeric leaf of a freshly written BENCH file is compared
   against the committed baseline under a per-key tolerance class:

   - contract fields (booleans, counts, strings — "pass",
     "trace_byte_identical", event tallies, instance sizes) must match
     exactly;
   - deterministic floats (potentials, relative errors) must agree to a
     tight relative tolerance (they only move when the code changes —
     which is what the gate is for);
   - wall-clock and machine-shape fields (anything *_ns, wall, per_sec,
     ns_per_op, speedup, cores_available, pool_width) are advisory:
     reported when they drift, never failing — on a 1-core CI container
     pooled timings measure domain overhead, not speedup;
   - provenance ("meta.*" except "meta.schema") is ignored outright.

   A baseline key missing from the fresh file is a hard failure (a
   silently vanished contract is the worst kind of regression); fresh
   keys absent from the baseline are fine (schemas grow forward). *)

module Json = Staleroute_obs.Json

type cls = Exact | Tolerance | Advisory | Ignored

type mismatch = {
  key : string;
  base : string;  (** baseline value, rendered *)
  fresh : string;
  cls : cls;
}

type outcome = {
  name : string;  (** file basename, e.g. "BENCH_trace.json" *)
  compared : int;  (** leaves checked (Ignored excluded) *)
  missing : string list;  (** baseline keys absent from fresh — hard *)
  extra : int;  (** fresh keys absent from baseline — fine *)
  failures : mismatch list;  (** Exact/Tolerance mismatches — hard *)
  advisories : mismatch list;  (** Advisory drifts — never fail *)
}

let advisory_markers =
  [
    "_ns";
    "wall";
    "ns_per_op";
    "per_sec";
    "speedup";
    "cores_available";
    "pool_width";
  ]

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let classify key leaf =
  if
    String.length key >= 5
    && String.sub key 0 5 = "meta."
    && key <> "meta.schema"
  then Ignored
  else if List.exists (contains_sub key) advisory_markers then Advisory
  else match leaf with Json.Float _ -> Tolerance | _ -> Exact

(* Flatten to dotted-path leaves, preserving file order. *)
let flatten json =
  let rec go prefix json acc =
    match json with
    | Json.Obj fields ->
        List.fold_left
          (fun acc (k, v) ->
            go (if prefix = "" then k else prefix ^ "." ^ k) v acc)
          acc fields
    | Json.List items ->
        List.fold_left
          (fun (i, acc) v ->
            (i + 1, go (Printf.sprintf "%s[%d]" prefix i) v acc))
          (0, acc) items
        |> snd
    | leaf -> (prefix, leaf) :: acc
  in
  List.rev (go "" json [])

let floats_close a b =
  a = b
  || (Float.is_nan a && Float.is_nan b)
  || Float.abs (a -. b) <= 1e-12
  || Float.abs (a -. b) <= 1e-6 *. Float.max (Float.abs a) (Float.abs b)

let leaves_equal cls a b =
  match (a, b) with
  | Json.Float x, Json.Float y -> (
      match cls with
      | Exact -> x = y || (Float.is_nan x && Float.is_nan y)
      | _ -> floats_close x y)
  | Json.Int x, Json.Float y | Json.Float y, Json.Int x -> (
      match cls with
      | Exact -> float_of_int x = y
      | _ -> floats_close (float_of_int x) y)
  | a, b -> a = b

let load_json path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          Json.of_string s)

let compare_files ~baseline ~fresh =
  match (load_json baseline, load_json fresh) with
  | Error e, _ -> Error (baseline ^ ": " ^ e)
  | _, Error e -> Error (fresh ^ ": " ^ e)
  | Ok bj, Ok fj ->
      let bl = flatten bj and fl = flatten fj in
      let ftbl = Hashtbl.create 64 in
      List.iter (fun (k, v) -> Hashtbl.replace ftbl k v) fl;
      let compared = ref 0 in
      let missing = ref [] in
      let failures = ref [] in
      let advisories = ref [] in
      List.iter
        (fun (key, bleaf) ->
          match classify key bleaf with
          | Ignored -> ()
          | cls -> (
              incr compared;
              match Hashtbl.find_opt ftbl key with
              | None -> missing := key :: !missing
              | Some fleaf ->
                  if not (leaves_equal cls bleaf fleaf) then begin
                    let m =
                      {
                        key;
                        base = Json.to_string bleaf;
                        fresh = Json.to_string fleaf;
                        cls;
                      }
                    in
                    match cls with
                    | Advisory -> advisories := m :: !advisories
                    | _ -> failures := m :: !failures
                  end))
        bl;
      let base_keys = Hashtbl.create 64 in
      List.iter (fun (k, _) -> Hashtbl.replace base_keys k ()) bl;
      let extra =
        List.length
          (List.filter (fun (k, _) -> not (Hashtbl.mem base_keys k)) fl)
      in
      Ok
        {
          name = Filename.basename baseline;
          compared = !compared;
          missing = List.rev !missing;
          extra;
          failures = List.rev !failures;
          advisories = List.rev !advisories;
        }

let passed o = o.missing = [] && o.failures = []

let cls_label = function
  | Exact -> "exact"
  | Tolerance -> "tolerance"
  | Advisory -> "advisory"
  | Ignored -> "ignored"

(* Markdown: one status table over all files, then a row per difference. *)
let render outcomes =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "| file | keys | status |\n|---|---|---|\n";
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %d | %s |\n" o.name o.compared
           (if not (passed o) then
              Printf.sprintf "**FAIL** (%d mismatch%s%s)"
                (List.length o.failures + List.length o.missing)
                (if List.length o.failures + List.length o.missing = 1 then ""
                 else "es")
                (if o.advisories <> [] then
                   Printf.sprintf ", %d advisory" (List.length o.advisories)
                 else "")
            else if o.advisories <> [] then
              Printf.sprintf "pass (%d advisory drift%s)"
                (List.length o.advisories)
                (if List.length o.advisories = 1 then "" else "s")
            else "pass")))
    outcomes;
  let any_rows =
    List.exists
      (fun o -> o.failures <> [] || o.advisories <> [] || o.missing <> [])
      outcomes
  in
  if any_rows then begin
    Buffer.add_string buf
      "\n| file | key | class | baseline | fresh | verdict |\n\
       |---|---|---|---|---|---|\n";
    List.iter
      (fun o ->
        List.iter
          (fun k ->
            Buffer.add_string buf
              (Printf.sprintf "| %s | %s | %s | — | missing | FAIL |\n" o.name
                 k (cls_label Exact)))
          o.missing;
        List.iter
          (fun m ->
            Buffer.add_string buf
              (Printf.sprintf "| %s | %s | %s | %s | %s | %s |\n" o.name m.key
                 (cls_label m.cls) m.base m.fresh
                 (match m.cls with Advisory -> "drift (ok)" | _ -> "FAIL")))
          (o.failures @ o.advisories))
      outcomes
  end;
  Buffer.contents buf

(* Gate a baseline directory against freshly written files: every
   BENCH_*.json committed in [baseline_dir] must have a fresh
   counterpart in [fresh_dir] that matches under its tolerance
   classes.  Returns the process exit code. *)
let run ~baseline_dir ~fresh_dir =
  match Sys.readdir baseline_dir with
  | exception Sys_error e ->
      prerr_endline ("bench compare: " ^ e);
      2
  | entries ->
      let names =
        Array.to_list entries
        |> List.filter (fun f ->
               String.length f > 6
               && String.sub f 0 6 = "BENCH_"
               && Filename.check_suffix f ".json")
        |> List.sort String.compare
      in
      if names = [] then begin
        Printf.eprintf "bench compare: no BENCH_*.json under %s\n"
          baseline_dir;
        2
      end
      else begin
        let outcomes, errors =
          List.fold_left
            (fun (os, es) name ->
              match
                compare_files
                  ~baseline:(Filename.concat baseline_dir name)
                  ~fresh:(Filename.concat fresh_dir name)
              with
              | Ok o -> (o :: os, es)
              | Error e -> (os, e :: es))
            ([], []) names
        in
        let outcomes = List.rev outcomes and errors = List.rev errors in
        print_string (render outcomes);
        List.iter (fun e -> prerr_endline ("bench compare: " ^ e)) errors;
        let failed =
          errors <> [] || List.exists (fun o -> not (passed o)) outcomes
        in
        if failed then begin
          prerr_endline
            "bench compare: REGRESSION — contract fields diverged from the \
             committed baselines (timing drifts alone never fail).";
          1
        end
        else begin
          Printf.printf
            "bench compare: %d baseline file%s match (advisory timing \
             drifts, if any, listed above)\n"
            (List.length outcomes)
            (if List.length outcomes = 1 then "" else "s");
          0
        end
      end
