(** Regression gate over the committed [BENCH_*.json] baselines: compare
    numeric leaves of fresh bench output against the committed files
    under per-key tolerance classes — contract fields exact,
    deterministic floats to a tight relative tolerance, wall-clock /
    machine-shape keys advisory (reported, never failing), provenance
    ([meta.*] except [meta.schema]) ignored.  Output is a markdown
    table; a nonzero exit flags a real regression. *)

type cls = Exact | Tolerance | Advisory | Ignored

type mismatch = {
  key : string;  (** dotted path of the leaf, e.g. ["stale.phases"] *)
  base : string;  (** baseline value, rendered as JSON *)
  fresh : string;
  cls : cls;
}

type outcome = {
  name : string;  (** file basename, e.g. ["BENCH_trace.json"] *)
  compared : int;  (** leaves checked ([Ignored] excluded) *)
  missing : string list;  (** baseline keys absent from fresh — hard *)
  extra : int;  (** fresh keys absent from baseline — fine *)
  failures : mismatch list;  (** Exact/Tolerance mismatches — hard *)
  advisories : mismatch list;  (** Advisory drifts — never fail *)
}

val classify : string -> Staleroute_obs.Json.t -> cls
(** Tolerance class of a leaf from its dotted key path and value. *)

val compare_files : baseline:string -> fresh:string -> (outcome, string) result
(** Compare one fresh BENCH file against its committed baseline.
    [Error] means a file could not be read or parsed. *)

val passed : outcome -> bool
(** No missing keys and no hard mismatches (advisory drifts allowed). *)

val render : outcome list -> string
(** Markdown: a per-file status table, then one row per difference. *)

val run : baseline_dir:string -> fresh_dir:string -> int
(** Gate every [BENCH_*.json] in [baseline_dir] against its counterpart
    in [fresh_dir]; prints the markdown report and returns the process
    exit code (0 = pass, 1 = regression, 2 = usage/IO error). *)
